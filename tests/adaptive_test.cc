// Tests for the contention-adaptive per-variable agent layer
// (docs/DESIGN.md §11): static plan derivation from the analysis pipeline,
// plan-seeded route dispatch, the migration epoch handshake (forced and
// controller-driven), the allocation-free hot-path lookup, lazy recording
// rings, the sharded po_window gate, and the Mvee-level wiring.

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "mvee/agents/agent_fleet.h"
#include "mvee/agents/context.h"
#include "mvee/agents/partial_order.h"
#include "mvee/agents/total_order.h"
#include "mvee/analysis/assignment_plan.h"
#include "mvee/analysis/mir.h"
#include "mvee/analysis/syncop_analysis.h"
#include "mvee/monitor/mvee.h"
#include "mvee/sync/primitives.h"
#include "mvee/util/variant_killed.h"

// --- Binary-wide heap allocation counter (rendezvous_test idiom) ------------

namespace {
std::atomic<uint64_t> g_heap_allocs{0};

void* CountedAlloc(std::size_t size) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* ptr = std::malloc(size == 0 ? 1 : size)) {
    return ptr;
  }
  throw std::bad_alloc();
}

void* CountedAlignedAlloc(std::size_t size, std::size_t align) {
  g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* ptr = std::aligned_alloc(align, (size + align - 1) / align * align)) {
    return ptr;
  }
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* ptr) noexcept { std::free(ptr); }
void operator delete[](void* ptr) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }
void operator delete(void* ptr, std::align_val_t) noexcept { std::free(ptr); }
void operator delete[](void* ptr, std::align_val_t) noexcept { std::free(ptr); }

namespace mvee {
namespace {

// A MIR module exercising all four verdict classes:
//   hot      global, LOCK-RMW from two functions        -> shared-hot -> TO
//   cold     global, one store from one function        -> uncontended -> PVO
//   local    stack, all sites in one function           -> thread-local -> Null
//   alias_a/alias_b  one site's pointer may reach both  -> ambiguous -> PO
MirModule BuildLadderModule(int32_t* hot, int32_t* cold, int32_t* local, int32_t* alias_a,
                            int32_t* alias_b) {
  MirBuilder builder("ladder");
  *hot = builder.Object("hot");
  *cold = builder.Object("cold");
  *local = builder.Object("local", MirStorage::kStack);
  *alias_a = builder.Object("alias_a");
  *alias_b = builder.Object("alias_b");

  builder.Function("f");
  const int32_t rf_hot = builder.Reg();
  builder.AddrOf(rf_hot, *hot).LockRmw(rf_hot, "f.c:1");
  const int32_t rf_cold = builder.Reg();
  builder.AddrOf(rf_cold, *cold).Store(rf_cold, "f.c:2");
  const int32_t rf_local = builder.Reg();
  builder.AddrOf(rf_local, *local).LockRmw(rf_local, "f.c:3").Load(rf_local, "f.c:4");

  builder.Function("g");
  const int32_t rg_hot = builder.Reg();
  builder.AddrOf(rg_hot, *hot).LockRmw(rg_hot, "g.c:1");
  const int32_t rg_alias = builder.Reg();
  builder.AddrOf(rg_alias, *alias_a);
  builder.AddrOf(rg_alias, *alias_b);  // pts(rg_alias) = {alias_a, alias_b}
  builder.LockRmw(rg_alias, "g.c:2");

  return builder.Build();
}

SyncOpReport ReportForAll(const MirModule& module) {
  SyncOpReport report;
  report.module_name = module.name;
  for (size_t i = 0; i < module.objects.size(); ++i) {
    report.sync_objects.insert(static_cast<int32_t>(i));
  }
  return report;
}

const VariableAssignment* FindVariable(const AssignmentPlanReport& report,
                                       const std::string& name) {
  for (const auto& variable : report.variables) {
    if (variable.name == name) {
      return &variable;
    }
  }
  return nullptr;
}

TEST(AssignmentPlanTest, VerdictLadderCoversAllFourClasses) {
  int32_t hot, cold, local, alias_a, alias_b;
  const MirModule module = BuildLadderModule(&hot, &cold, &local, &alias_a, &alias_b);
  const AssignmentPlanReport report = DeriveAssignmentPlan(module, ReportForAll(module));
  ASSERT_EQ(report.variables.size(), 5u);
  ASSERT_EQ(report.plan.assignments.size(), 5u);

  const VariableAssignment* hot_var = FindVariable(report, "hot");
  ASSERT_NE(hot_var, nullptr);
  EXPECT_EQ(hot_var->verdict, AssignmentVerdict::kSharedHot);
  EXPECT_EQ(hot_var->kind, AgentKind::kTotalOrder);
  EXPECT_EQ(hot_var->rmw_sites, 2u);
  EXPECT_EQ(hot_var->touching_functions, 2u);

  const VariableAssignment* cold_var = FindVariable(report, "cold");
  ASSERT_NE(cold_var, nullptr);
  EXPECT_EQ(cold_var->verdict, AssignmentVerdict::kUncontendedShared);
  EXPECT_EQ(cold_var->kind, AgentKind::kPerVariableOrder);

  const VariableAssignment* local_var = FindVariable(report, "local");
  ASSERT_NE(local_var, nullptr);
  EXPECT_EQ(local_var->verdict, AssignmentVerdict::kThreadLocal);
  EXPECT_EQ(local_var->kind, AgentKind::kNull);

  for (const char* name : {"alias_a", "alias_b"}) {
    const VariableAssignment* aliased = FindVariable(report, name);
    ASSERT_NE(aliased, nullptr) << name;
    EXPECT_EQ(aliased->verdict, AssignmentVerdict::kAmbiguouslyAliased) << name;
    EXPECT_EQ(aliased->kind, AgentKind::kPartialOrder) << name;
    EXPECT_TRUE(aliased->aliased) << name;
  }
}

TEST(AssignmentPlanTest, NullRoutesCanBeDisabled) {
  int32_t hot, cold, local, alias_a, alias_b;
  const MirModule module = BuildLadderModule(&hot, &cold, &local, &alias_a, &alias_b);
  AssignmentPlanOptions options;
  options.allow_null_routes = false;
  const AssignmentPlanReport report =
      DeriveAssignmentPlan(module, ReportForAll(module), options);
  const VariableAssignment* local_var = FindVariable(report, "local");
  ASSERT_NE(local_var, nullptr);
  // The verdict is unchanged; only the route loses the record-nothing agent.
  EXPECT_EQ(local_var->verdict, AssignmentVerdict::kThreadLocal);
  EXPECT_EQ(local_var->kind, AgentKind::kPerVariableOrder);
}

TEST(AssignmentPlanTest, FormatListsEveryVariable) {
  int32_t hot, cold, local, alias_a, alias_b;
  const MirModule module = BuildLadderModule(&hot, &cold, &local, &alias_a, &alias_b);
  const AssignmentPlanReport report = DeriveAssignmentPlan(module, ReportForAll(module));
  const std::string text = FormatAssignmentPlan(report);
  for (const char* name : {"hot", "cold", "local", "alias_a", "alias_b"}) {
    EXPECT_NE(text.find(name), std::string::npos) << text;
  }
  EXPECT_NE(text.find("shared-hot"), std::string::npos) << text;
  EXPECT_NE(text.find("thread-local"), std::string::npos) << text;
}

TEST(RouteWordTest, PackingRoundTrips) {
  for (AgentKind kind : {AgentKind::kNull, AgentKind::kTotalOrder, AgentKind::kPartialOrder,
                         AgentKind::kWallOfClocks, AgentKind::kPerVariableOrder}) {
    for (VariableAgentMap::RouteState state :
         {VariableAgentMap::RouteState::kActive, VariableAgentMap::RouteState::kQuiescing,
          VariableAgentMap::RouteState::kDraining}) {
      const uint64_t word = VariableAgentMap::MakeRoute(kind, state, 12345);
      EXPECT_EQ(VariableAgentMap::RouteKind(word), kind);
      EXPECT_EQ(VariableAgentMap::RouteStateOf(word), state);
      EXPECT_EQ(VariableAgentMap::RouteEpoch(word), 12345u);
    }
  }
}

AgentConfig AdaptiveConfig(uint32_t variants, uint32_t threads) {
  AgentConfig config;
  config.num_variants = variants;
  config.max_threads = threads;
  config.buffer_capacity = 1 << 14;
  config.replay_deadline = std::chrono::milliseconds(20000);
  config.adaptive_agents = true;  // Explicit: must hold under MVEE_ADAPTIVE_AGENTS=0 sweeps.
  config.migrate_interval_ms = 0;  // Controller off unless a test turns it on.
  return config;
}

// The ISSUE's wiring test: a MirModule flows through the analysis into an
// AgentFleet and two variables end up routed to different agents.
TEST(AdaptiveFleetTest, DerivedPlanSeedsDistinctRoutes) {
  int32_t hot, cold, local, alias_a, alias_b;
  const MirModule module = BuildLadderModule(&hot, &cold, &local, &alias_a, &alias_b);
  const AssignmentPlanReport derived = DeriveAssignmentPlan(module, ReportForAll(module));

  std::atomic<bool> abort{false};
  AgentControl control;
  control.abort_flag = &abort;
  AgentFleet fleet(AgentKind::kWallOfClocks, AdaptiveConfig(2, 2), control, &derived.plan);
  ASSERT_TRUE(fleet.adaptive());
  EXPECT_EQ(fleet.BoundVariables(), 5u);
  EXPECT_EQ(fleet.RouteOf("hot"), AgentKind::kTotalOrder);
  EXPECT_EQ(fleet.RouteOf("cold"), AgentKind::kPerVariableOrder);
  EXPECT_EQ(fleet.RouteOf("local"), AgentKind::kNull);
  EXPECT_EQ(fleet.RouteOf("alias_a"), AgentKind::kPartialOrder);
  // Unregistered names and the default route carry the fleet's kind.
  EXPECT_EQ(fleet.RouteOf(""), AgentKind::kWallOfClocks);
  EXPECT_EQ(fleet.RouteOf("never-registered"), AgentKind::kWallOfClocks);
}

TEST(AdaptiveFleetTest, NonAdaptiveFleetIgnoresPlan) {
  AgentAssignmentPlan plan;
  plan.assignments.push_back({"hot", AgentKind::kTotalOrder, "shared-hot"});
  AgentConfig config = AdaptiveConfig(2, 2);
  config.adaptive_agents = false;
  std::atomic<bool> abort{false};
  AgentControl control;
  control.abort_flag = &abort;
  AgentFleet fleet(AgentKind::kWallOfClocks, config, control, &plan);
  EXPECT_FALSE(fleet.adaptive());
  EXPECT_EQ(fleet.BoundVariables(), 0u);
  EXPECT_EQ(fleet.RouteOf("hot"), AgentKind::kWallOfClocks);
  EXPECT_FALSE(fleet.ForceMigrate("hot", AgentKind::kTotalOrder));
}

// A kNull route must skip record/replay entirely (the payoff of the
// thread-local verdict) while the dispatch gates still count ops exactly —
// the counters are what make a later migration off kNull sound.
TEST(AdaptiveFleetTest, NullRouteSkipsRecordingButCountsOps) {
  AgentAssignmentPlan plan;
  plan.assignments.push_back({"tl", AgentKind::kNull, "thread-local"});
  std::atomic<bool> abort{false};
  AgentControl control;
  control.abort_flag = &abort;
  AgentFleet fleet(AgentKind::kWallOfClocks, AdaptiveConfig(2, 1), control, &plan);
  auto master = fleet.CreateAgent(0);
  auto slave = fleet.CreateAgent(1);

  int master_var = 0;
  int slave_var = 0;
  master->BindVariable("tl", &master_var);
  slave->BindVariable("tl", &slave_var);
  for (int i = 0; i < 100; ++i) {
    master->BeforeSyncOp(0, &master_var);
    master->AfterSyncOp(0, &master_var);
  }
  // The slave free-runs: completing without a master recording to chase is
  // itself the proof that nothing is replayed on this route.
  for (int i = 0; i < 100; ++i) {
    slave->BeforeSyncOp(0, &slave_var);
    slave->AfterSyncOp(0, &slave_var);
  }
  EXPECT_EQ(fleet.StatsSnapshot().ops_recorded, 0u);
  EXPECT_EQ(fleet.StatsSnapshot().ops_replayed, 0u);

  const VariableAgentMap::Entry* entry = fleet.map()->FindByName("tl");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->recorded[0].value.load(), 100u);
  EXPECT_EQ(entry->replayed[0][0].value.load(), 100u);
}

// --- Migration under load ---------------------------------------------------

struct MigrationRunResult {
  // Per-variant lock-acquisition order (tid sequence) on the routed lock.
  std::vector<std::vector<uint32_t>> logs;
  uint64_t migrations_completed = 0;
  uint64_t migrations_aborted = 0;
  bool migrate_returned = false;
  bool ok = true;
};

// Two variants x two threads hammer one bound SpinLock; optionally the main
// thread force-promotes its route mid-run. The per-variant acquisition logs
// are the "variant output": replay equivalence = identical logs.
MigrationRunResult RunBoundLockHarness(bool adaptive, bool force_migrate, int ops) {
  AgentConfig config = AdaptiveConfig(2, 2);
  config.adaptive_agents = adaptive;
  config.migrate_timeout = std::chrono::milliseconds(10000);
  AgentAssignmentPlan plan;
  plan.assignments.push_back({"hot", AgentKind::kWallOfClocks, "seeded"});
  std::atomic<bool> abort{false};
  AgentControl control;
  control.abort_flag = &abort;
  AgentFleet fleet(AgentKind::kWallOfClocks, config, control, &plan);

  MigrationRunResult result;
  std::vector<std::unique_ptr<SyncAgent>> agents;
  std::vector<std::unique_ptr<SpinLock>> locks;
  for (uint32_t v = 0; v < 2; ++v) {
    agents.push_back(fleet.CreateAgent(v));
    locks.push_back(std::make_unique<SpinLock>());
    result.logs.emplace_back();
  }

  std::atomic<uint32_t> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  for (uint32_t v = 0; v < 2; ++v) {
    for (uint32_t t = 0; t < 2; ++t) {
      workers.emplace_back([&, v, t] {
        SyncContext context{agents[v].get(), nullptr, t};
        ScopedSyncContext scoped(&context);
        // Every thread binds before any thread starts: binds are idempotent,
        // and the barrier keeps all sync ops behind all binds.
        locks[v]->Bind("hot");
        ready.fetch_add(1);
        while (!go.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
        try {
          for (int i = 0; i < ops; ++i) {
            locks[v]->Lock();
            result.logs[v].push_back(t);
            locks[v]->Unlock();
          }
        } catch (const VariantKilled&) {
          result.ok = false;
        }
      });
    }
  }
  while (ready.load() < 4) {
    std::this_thread::yield();
  }
  go.store(true, std::memory_order_release);
  if (force_migrate) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    result.migrate_returned = fleet.ForceMigrate("hot", AgentKind::kTotalOrder);
  }
  for (auto& worker : workers) {
    worker.join();
  }
  result.migrations_completed = fleet.MigrationsCompleted();
  result.migrations_aborted = fleet.MigrationsAborted();
  return result;
}

TEST(AdaptiveMigrationTest, ForcedPromotionUnderLoadKeepsVariantsEquivalent) {
  const int ops = 20000;
  const MigrationRunResult migrated = RunBoundLockHarness(true, /*force_migrate=*/true, ops);
  ASSERT_TRUE(migrated.ok);
  EXPECT_TRUE(migrated.migrate_returned);
  EXPECT_GE(migrated.migrations_completed, 1u);
  EXPECT_EQ(migrated.migrations_aborted, 0u);
  ASSERT_EQ(migrated.logs[0].size(), static_cast<size_t>(2 * ops));
  // Byte-identical variant output across the mid-run flip.
  EXPECT_EQ(migrated.logs[0], migrated.logs[1]);

  // The static-only control run: same program, no migration machinery in the
  // way — equally equivalent, with the same op volume.
  const MigrationRunResult baseline = RunBoundLockHarness(false, /*force_migrate=*/false, ops);
  ASSERT_TRUE(baseline.ok);
  EXPECT_EQ(baseline.migrations_completed, 0u);
  ASSERT_EQ(baseline.logs[0].size(), static_cast<size_t>(2 * ops));
  EXPECT_EQ(baseline.logs[0], baseline.logs[1]);
}

// Drives `ops` sync ops per thread through `fleet`'s master and slave on a
// variable bound as `name`, with `threads` threads per variant.
void DriveBoundVariable(AgentFleet& fleet, const std::string& name, uint32_t threads, int ops) {
  auto master = fleet.CreateAgent(0);
  auto slave = fleet.CreateAgent(1);
  std::vector<int64_t> vars(2);
  master->BindVariable(name.c_str(), &vars[0]);
  slave->BindVariable(name.c_str(), &vars[1]);
  std::vector<std::thread> workers;
  for (uint32_t v = 0; v < 2; ++v) {
    SyncAgent* agent = (v == 0 ? master : slave).get();
    for (uint32_t t = 0; t < threads; ++t) {
      workers.emplace_back([agent, &vars, v, t, ops] {
        for (int i = 0; i < ops; ++i) {
          agent->BeforeSyncOp(t, &vars[v]);
          agent->AfterSyncOp(t, &vars[v]);
        }
      });
    }
  }
  for (auto& worker : workers) {
    worker.join();
  }
}

TEST(AdaptiveMigrationTest, ControllerPromotesContendedVariable) {
  AgentConfig config = AdaptiveConfig(2, 2);
  config.migrate_interval_ms = 5;
  config.migrate_min_ops = 64;
  AgentAssignmentPlan plan;
  plan.assignments.push_back({"ctr", AgentKind::kPerVariableOrder, "misseeded"});
  std::atomic<bool> abort{false};
  AgentControl control;
  control.abort_flag = &abort;
  AgentFleet fleet(AgentKind::kWallOfClocks, config, control, &plan);
  ASSERT_EQ(fleet.RouteOf("ctr"), AgentKind::kPerVariableOrder);

  // Two threads' deltas must land in ONE sampling interval for the
  // controller to call the variable contended. A single burst can serialize
  // on an oversubscribed machine (each thread runs to completion in its own
  // scheduling quantum), which the controller correctly reads as
  // uncontended — so keep offering bursts (same agents and bound addresses)
  // until one actually overlaps.
  auto master = fleet.CreateAgent(0);
  auto slave = fleet.CreateAgent(1);
  std::vector<int64_t> vars(2);
  master->BindVariable("ctr", &vars[0]);
  slave->BindVariable("ctr", &vars[1]);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (fleet.RouteOf("ctr") != AgentKind::kTotalOrder &&
         std::chrono::steady_clock::now() < deadline) {
    std::vector<std::thread> workers;
    for (uint32_t v = 0; v < 2; ++v) {
      SyncAgent* agent = (v == 0 ? master : slave).get();
      for (uint32_t t = 0; t < 2; ++t) {
        workers.emplace_back([agent, &vars, v, t] {
          for (int i = 0; i < 5000; ++i) {
            agent->BeforeSyncOp(t, &vars[v]);
            agent->AfterSyncOp(t, &vars[v]);
          }
        });
      }
    }
    for (auto& worker : workers) {
      worker.join();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(fleet.RouteOf("ctr"), AgentKind::kTotalOrder);
  EXPECT_GE(fleet.MigrationsCompleted(), 1u);
}

TEST(AdaptiveMigrationTest, ControllerDemotesSingleThreadedVariable) {
  AgentConfig config = AdaptiveConfig(2, 1);
  config.migrate_interval_ms = 5;
  config.migrate_min_ops = 64;
  AgentAssignmentPlan plan;
  plan.assignments.push_back({"solo", AgentKind::kTotalOrder, "misseeded"});
  std::atomic<bool> abort{false};
  AgentControl control;
  control.abort_flag = &abort;
  AgentFleet fleet(AgentKind::kWallOfClocks, config, control, &plan);

  DriveBoundVariable(fleet, "solo", /*threads=*/1, /*ops=*/5000);

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (fleet.RouteOf("solo") != AgentKind::kPerVariableOrder &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(fleet.RouteOf("solo"), AgentKind::kPerVariableOrder);
  EXPECT_GE(fleet.MigrationsCompleted(), 1u);
}

// --- Hot-path properties ----------------------------------------------------

// The routed dispatch path (map lookup + gates + sub-agent) must not touch
// the heap in steady state — neither for bound variables nor for the default
// route of unbound addresses.
TEST(AdaptiveAllocationTest, RoutedHotPathIsAllocationFree) {
  AgentAssignmentPlan plan;
  plan.assignments.push_back({"hot", AgentKind::kWallOfClocks, "seeded"});
  std::atomic<bool> abort{false};
  AgentControl control;
  control.abort_flag = &abort;
  AgentFleet fleet(AgentKind::kWallOfClocks, AdaptiveConfig(2, 1), control, &plan);
  auto master = fleet.CreateAgent(0);
  auto slave = fleet.CreateAgent(1);

  int64_t bound_vars[2] = {0, 0};
  int64_t unbound_vars[2] = {0, 0};
  master->BindVariable("hot", &bound_vars[0]);
  slave->BindVariable("hot", &bound_vars[1]);

  auto one_round = [&](int64_t* m, int64_t* s) {
    master->BeforeSyncOp(0, m);
    master->AfterSyncOp(0, m);
    slave->BeforeSyncOp(0, s);
    slave->AfterSyncOp(0, s);
  };
  // Warmup: lazy rings materialize, per-thread scratch is touched.
  for (int i = 0; i < 256; ++i) {
    one_round(&bound_vars[0], &bound_vars[1]);
    one_round(&unbound_vars[0], &unbound_vars[1]);
  }
  const uint64_t before = g_heap_allocs.load(std::memory_order_relaxed);
  for (int i = 0; i < 4096; ++i) {
    one_round(&bound_vars[0], &bound_vars[1]);
    one_round(&unbound_vars[0], &unbound_vars[1]);
  }
  const uint64_t after = g_heap_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u)
      << "heap allocations leaked into the adaptive dispatch hot path";
}

// Lazy recording rings: a 64-thread config with two active threads must
// materialize exactly two rings, not 64.
TEST(LazyRingTest, RingsMaterializeOnlyForActiveThreads) {
  AgentConfig config;
  config.num_variants = 2;
  config.max_threads = 64;
  config.sharded_recording = true;
  config.buffer_capacity = 1 << 10;
  std::atomic<bool> abort{false};
  AgentControl control;
  control.abort_flag = &abort;
  TotalOrderRuntime runtime(config, control);
  auto master = runtime.CreateAgent(0);
  auto slave = runtime.CreateAgent(1);

  EXPECT_EQ(runtime.RecordingRingsCreated(), 0u);
  int var = 0;
  for (uint32_t tid : {3u, 7u}) {
    for (int i = 0; i < 10; ++i) {
      master->BeforeSyncOp(tid, &var);
      master->AfterSyncOp(tid, &var);
    }
  }
  EXPECT_EQ(runtime.RecordingRingsCreated(), 2u);
  int slave_var = 0;
  for (uint32_t tid : {3u, 7u}) {
    for (int i = 0; i < 10; ++i) {
      slave->BeforeSyncOp(tid, &slave_var);
      slave->AfterSyncOp(tid, &slave_var);
    }
  }
  EXPECT_EQ(runtime.RecordingRingsCreated(), 2u);
}

// AgentConfig::po_window under sharded recording: the master may run ahead
// of the slowest slave's replayed prefix by at most po_window (plus the
// bounded overshoot of threads already past the gate when the limit moved).
TEST(PoWindowTest, ShardedMasterRunaheadIsBounded) {
  AgentConfig config;
  config.num_variants = 2;
  config.max_threads = 1;
  config.sharded_recording = true;
  config.po_window = 8;
  config.buffer_capacity = 1 << 10;
  config.replay_deadline = std::chrono::milliseconds(20000);
  std::atomic<bool> abort{false};
  AgentControl control;
  control.abort_flag = &abort;
  PartialOrderRuntime runtime(config, control);
  auto master = runtime.CreateAgent(0);
  auto slave = runtime.CreateAgent(1);

  const int ops = 200;
  const uint64_t bound_slack = config.po_window + config.max_threads;
  int master_var = 0;
  std::atomic<bool> master_done{false};
  std::thread recorder([&] {
    for (int i = 0; i < ops; ++i) {
      master->BeforeSyncOp(0, &master_var);
      master->AfterSyncOp(0, &master_var);
    }
    master_done.store(true);
  });

  // With zero ops replayed, the master must park at the window edge.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_LE(runtime.SequencesIssued(), bound_slack);
  EXPECT_FALSE(master_done.load());
  EXPECT_GE(runtime.stats().Aggregate().record_stalls, 1u);

  int slave_var = 0;
  for (int i = 0; i < ops; ++i) {
    slave->BeforeSyncOp(0, &slave_var);
    slave->AfterSyncOp(0, &slave_var);
    if ((i & 15) == 0) {
      // Invariant sample: issued is read BEFORE replayed, so the prefix can
      // only have advanced since — the inequality is safe against the race.
      const uint64_t issued = runtime.SequencesIssued();
      const uint64_t replayed = runtime.ReplayedPrefix(1);
      EXPECT_LE(issued, replayed + bound_slack);
    }
  }
  recorder.join();
  EXPECT_TRUE(master_done.load());
  EXPECT_EQ(runtime.SequencesIssued(), static_cast<uint64_t>(ops));
}

// --- Mvee-level wiring ------------------------------------------------------

struct MveeSweepResult {
  std::string output;
  uint64_t bound_variables = 0;
  uint64_t migrations = 0;
  uint64_t migrations_aborted = 0;
  bool ok = false;
};

MveeSweepResult RunAdaptiveSweep(bool adaptive) {
  MveeOptions options;
  options.num_variants = 2;
  options.agent = AgentKind::kWallOfClocks;
  options.enable_aslr = false;
  options.rendezvous_timeout = std::chrono::milliseconds(20000);
  options.agent_config.replay_deadline = std::chrono::milliseconds(20000);
  options.agent_config.adaptive_agents = adaptive;
  options.agent_config.migrate_interval_ms = 0;  // Static seeding only.
  options.agent_plan.assignments = {
      {"hot", AgentKind::kTotalOrder, "shared-hot"},
      {"cold", AgentKind::kPerVariableOrder, "uncontended-shared"},
      {"scratch", AgentKind::kNull, "thread-local"},
  };
  Mvee mvee(options);
  const Status status = mvee.Run([](VariantEnv& env) {
    auto hot = std::make_shared<Mutex>();
    auto hot_count = std::make_shared<int>(0);
    auto cold = std::make_shared<InstrumentedAtomic<int32_t>>();
    auto scratch_totals = std::make_shared<std::array<int32_t, 2>>();
    hot->Bind("hot");
    cold->Bind("cold");
    auto worker = [hot, hot_count, cold, scratch_totals](int which) {
      return [hot, hot_count, cold, scratch_totals, which](VariantEnv&) {
        InstrumentedAtomic<int32_t> scratch;
        scratch.Bind("scratch");
        for (int i = 0; i < 200; ++i) {
          scratch.FetchAdd(1);
          if (i % 4 == which) {
            cold->FetchAdd(1);
          }
          LockGuard<Mutex> guard(*hot);
          ++*hot_count;
        }
        (*scratch_totals)[which] = scratch.Load();
      };
    };
    ThreadHandle a = env.Spawn(worker(0));
    ThreadHandle b = env.Spawn(worker(1));
    env.Join(a);
    env.Join(b);
    const int64_t fd = env.Open("adaptive_sweep", VOpenFlags::kCreate | VOpenFlags::kWrite);
    env.Write(fd, std::to_string(*hot_count) + "," + std::to_string(cold->Load()) + "," +
                      std::to_string((*scratch_totals)[0]) + "," +
                      std::to_string((*scratch_totals)[1]));
    env.Close(fd);
  });
  MveeSweepResult result;
  result.ok = status.ok();
  EXPECT_TRUE(status.ok()) << "adaptive=" << adaptive << ": " << status.ToString();
  result.bound_variables = mvee.report().adaptive_bound_variables;
  result.migrations = mvee.report().agent_migrations;
  result.migrations_aborted = mvee.report().agent_migrations_aborted;
  if (auto file = mvee.kernel().vfs().Open("adaptive_sweep", false)) {
    const auto contents = file->Contents();
    result.output.assign(contents.begin(), contents.end());
  }
  return result;
}

TEST(AdaptiveMveeTest, ToggleSweepProducesIdenticalOutput) {
  const MveeSweepResult on = RunAdaptiveSweep(true);
  const MveeSweepResult off = RunAdaptiveSweep(false);
  ASSERT_TRUE(on.ok);
  ASSERT_TRUE(off.ok);
  EXPECT_FALSE(on.output.empty());
  EXPECT_EQ(on.output, off.output);
  EXPECT_EQ(on.output, "400,100,200,200");
  EXPECT_EQ(on.bound_variables, 3u);
  EXPECT_EQ(on.migrations, 0u);
  EXPECT_EQ(on.migrations_aborted, 0u);
  EXPECT_EQ(off.bound_variables, 0u);
}

// Controller-driven promotion during a full MVEE run surfaces in the report
// counters and leaves the verdict clean.
TEST(AdaptiveMveeTest, ControllerMigrationSurfacesInReport) {
  auto run_once = [](MveeReport& report) {
    MveeOptions options;
    options.num_variants = 2;
    options.agent = AgentKind::kWallOfClocks;
    options.enable_aslr = false;
    options.rendezvous_timeout = std::chrono::milliseconds(30000);
    options.agent_config.replay_deadline = std::chrono::milliseconds(30000);
    options.agent_config.adaptive_agents = true;
    options.agent_config.migrate_interval_ms = 5;
    options.agent_config.migrate_min_ops = 32;
    options.agent_plan.assignments = {{"promo", AgentKind::kPerVariableOrder, "misseeded"}};
    Mvee mvee(options);
    const Status status = mvee.Run([](VariantEnv& env) {
      auto promo = std::make_shared<InstrumentedAtomic<int64_t>>();
      // Plain (uninstrumented) start gate: per-variant scheduling glue only, so
      // it neither records sync ops nor perturbs replay. It guarantees the two
      // threads' bursts overlap — the controller must see BOTH tids' deltas to
      // call the variable contended.
      auto start_gate = std::make_shared<std::atomic<int>>(0);
      promo->Bind("promo");
      auto worker = [promo, start_gate](VariantEnv&) {
        start_gate->fetch_add(1);
        while (start_gate->load() < 2) {
          std::this_thread::yield();
        }
        // Phase 1: a contended burst — two threads' deltas in one controller
        // interval trigger the promotion to total-order.
        for (int i = 0; i < 20000; ++i) {
          promo->FetchAdd(1);
        }
        // Phase 2: slow trickle, long enough that the controller ticks and the
        // migration drains while the program is still alive. Both variants run
        // the same fixed iteration count, so record/replay stays aligned.
        for (int i = 0; i < 25; ++i) {
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
          promo->FetchAdd(1);
        }
      };
      ThreadHandle a = env.Spawn(worker);
      ThreadHandle b = env.Spawn(worker);
      env.Join(a);
      env.Join(b);
    });
    report = mvee.report();
    return status;
  };
  // On an oversubscribed machine the scheduler can run the two bursts back
  // to back, so no controller interval ever sees two active tids and nothing
  // promotes. That is correct controller behaviour (no observed contention),
  // not a failure — retry until a run actually exhibits the contention this
  // test is about. Every attempt must still be divergence-free.
  MveeReport report;
  for (int attempt = 0; attempt < 5; ++attempt) {
    const Status status = run_once(report);
    ASSERT_TRUE(status.ok()) << status.ToString();
    ASSERT_EQ(report.adaptive_bound_variables, 1u);
    ASSERT_EQ(report.agent_migrations_aborted, 0u);
    if (report.agent_migrations >= 1) {
      break;
    }
  }
  EXPECT_GE(report.agent_migrations, 1u);
}

}  // namespace
}  // namespace mvee
