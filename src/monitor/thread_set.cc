#include "mvee/monitor/thread_set.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstring>
#include <optional>
#include <sstream>
#include <thread>

#include "mvee/util/fault_injection.h"
#include "mvee/util/spin.h"
#include "mvee/util/variant_killed.h"

namespace mvee {

namespace {

// Spin budget before a slab waiter parks: deep into SpinWait's yield phase
// (which starts at 64 pauses) but before its 50us-sleep tail. A wait that a
// few hundred yields did not resolve is blocked on real work, and sleep
// polling burns more context switches than one parked futex wait.
constexpr uint64_t kParkAfterSpins = 1024;
// Parked-wait slice: long enough that idle thread sets cost ~nothing, short
// enough that even a (theoretically impossible, see util/park.h) lost wakeup
// only delays a round by half a millisecond.
constexpr auto kParkSlice = std::chrono::microseconds(500);

// "No single outlier" sentinel for the live digest comparisons.
constexpr uint32_t kNoOutlier = ~0u;

// XOR mask the corrupt-digest fault applies to a victim's deposit.
constexpr uint64_t kDigestCorruption = 0xBADD16E57ull;

}  // namespace

ThreadSetMonitor::ThreadSetMonitor(uint32_t tid, MonitorShared* shared)
    : tid_(tid), shared_(shared) {
  const uint32_t n = shared_->options->num_variants;
  requests_.resize(n, nullptr);
  digests_.resize(n, 0);
  // Round slabs: slab i starts serving round i; the last drainer of round r
  // re-arms its slab for round r + depth.
  slabs_ = std::vector<RoundSlab>(kSlabRingDepth);
  for (uint32_t i = 0; i < kSlabRingDepth; ++i) {
    slabs_[i].epoch.store(i, std::memory_order_relaxed);
    // Direct-construct: the slot's diagnostic sysno mirror makes ArrivalSlot
    // non-movable, so resize() (which relocates) is unavailable.
    slabs_[i].slots = std::vector<ArrivalSlot>(n);
  }
  cursors_ = std::vector<VariantCursor>(n);
  progress_ = std::vector<ProgressSlot>(n);
  if (shared_->options->sync_model == SyncModel::kLoose) {
    // Ring depth = how far the leader may run ahead (§2 reliability model).
    size_t depth = 2;
    while (depth < shared_->options->loose_buffer_depth) {
      depth <<= 1;
    }
    loose_ring_ = std::make_unique<BroadcastRing<LooseRecord*>>(depth);
    loose_pool_ = std::vector<LooseRecord>(depth);
    loose_pool_mask_ = depth - 1;
    for (uint32_t v = 1; v < n; ++v) {
      loose_ring_->RegisterConsumer();
      // A variant already dead at construction (mid-run thread spawn after
      // an excision) must not back-pressure the leader.
      if (shared_->reporter != nullptr && shared_->reporter->VariantDead(v)) {
        loose_ring_->DetachConsumer(v - 1);
      }
    }
  }
}

std::string ThreadSetMonitor::DebugString() {
  std::ostringstream out;
  out << "tid=" << tid_;
  if (shared_->options->sync_model == SyncModel::kLoose) {
    if (loose_ring_ != nullptr) {
      out << " loose write=" << loose_ring_->WriteCursor();
      for (uint32_t v = 1; v < shared_->options->num_variants; ++v) {
        out << " v" << v << "=" << loose_ring_->ReadCursor(v - 1)
            << (loose_ring_->ConsumerDetached(v - 1) ? "(detached)" : "");
      }
    }
    return out.str();
  }
  if (shared_->options->waitfree_rendezvous) {
    // Slab mode: diagnostics read only atomics (epochs, phases, bitmaps and
    // the slots' mirrored sysnos) — never the deposited request pointers,
    // which point at variant stacks and may already be retired. The slab
    // with the lowest epoch serves the oldest in-flight round: that is
    // where a stuck rendezvous is parked.
    const RoundSlab* oldest = &slabs_[0];
    for (const RoundSlab& slab : slabs_) {
      if (slab.epoch.load(std::memory_order_relaxed) <
          oldest->epoch.load(std::memory_order_relaxed)) {
        oldest = &slab;
      }
    }
    const uint32_t arrivals = oldest->arrivals.load(std::memory_order_acquire);
    out << " round=" << oldest->epoch.load(std::memory_order_relaxed)
        << " phase=" << oldest->phase.load(std::memory_order_relaxed)
        << " arrived=" << std::popcount(arrivals) << "/"
        << shared_->options->num_variants << " drained="
        << std::popcount(oldest->drained.load(std::memory_order_relaxed))
        << " parked=" << park_.parked();
    for (size_t v = 0; v < oldest->slots.size(); ++v) {
      if ((arrivals & (1u << v)) != 0) {
        out << " v" << v << "="
            << SysnoName(oldest->slots[v].sysno.load(std::memory_order_relaxed));
      }
    }
    return out.str();
  }
  std::unique_lock<std::mutex> lock(mutex_, std::try_to_lock);
  if (!lock.owns_lock()) {
    out << " <mutex busy>";
    return out.str();
  }
  out << " phase=" << (phase_ == Phase::kGather ? "gather" : "execute") << " arrived="
      << std::popcount(arrived_mask_) << " drained=" << std::popcount(drained_mask_)
      << " master_done=" << master_done_;
  for (size_t v = 0; v < requests_.size(); ++v) {
    if (requests_[v] != nullptr) {
      out << " v" << v << "=" << SysnoName(requests_[v]->sysno);
    }
  }
  return out.str();
}

void ThreadSetMonitor::NotifyShutdown() {
  // Empty critical section: serializes with any waiter's predicate check so
  // the notification cannot land in the unlock-to-sleep window. Callers must
  // never hold mutex_ when reporting (RunSyscall unlocks first).
  { std::lock_guard<std::mutex> lock(mutex_); }
  cv_.notify_all();
  // Slab waiters re-check reporter->tripped() on every spin step; this only
  // needs to lift the parked ones out of their slice sleeps.
  park_.WakeParked();
}

void ThreadSetMonitor::OnVariantExcised(uint32_t variant) {
  // Same empty-critical-section discipline as NotifyShutdown: gather loops
  // re-check the live mask under mutex_ (baseline) or on every spin step
  // (slabs); this lifts sleepers so they re-evaluate now, not at the end of
  // their park slice.
  { std::lock_guard<std::mutex> lock(mutex_); }
  cv_.notify_all();
  park_.WakeParked();
  if (loose_ring_ != nullptr && variant >= 1 &&
      variant < shared_->options->num_variants) {
    // The dead follower's cursor must stop gating the leader's pushes.
    loose_ring_->DetachConsumer(variant - 1);
  }
}

ThreadSetMonitor::CallProgress ThreadSetMonitor::Progress(uint32_t variant) const {
  CallProgress out;
  if (variant >= progress_.size()) {
    return out;
  }
  const ProgressSlot& slot = progress_[variant];
  out.seq = slot.seq.load(std::memory_order_relaxed);
  out.sysno = slot.sysno.load(std::memory_order_relaxed);
  out.in_call = (out.seq & 1) != 0;
  out.in_master = slot.in_master.load(std::memory_order_relaxed);
  return out;
}

bool ThreadSetMonitor::MustCompare(const SyscallRequest& request) const {
  switch (shared_->options->policy) {
    case MonitorPolicy::kLockstepAll:
      return true;
    case MonitorPolicy::kLockstepSensitive:
      return SensitivityOf(request.sysno) == SyscallSensitivity::kSensitive;
  }
  return true;
}

uint64_t ThreadSetMonitor::DepositDigest(uint32_t variant,
                                         const SyscallRequest& request) const {
  uint64_t digest = request.ComparableDigest();
  if (FaultInjector::Global().ShouldFire(FaultSite::kCorruptDigest, variant))
      [[unlikely]] {
    digest ^= kDigestCorruption;
  }
  return digest;
}

std::string ThreadSetMonitor::CompareRoundLive(uint32_t members, uint32_t* outlier) const {
  if ((members & 1u) == 0 || !MustCompare(*requests_[0])) {
    return "";
  }
  uint32_t mismatched = 0;
  uint32_t rest = members & ~1u;
  while (rest != 0) {
    const uint32_t v = static_cast<uint32_t>(std::countr_zero(rest));
    rest &= rest - 1;
    if (requests_[v]->sysno != requests_[0]->sysno || digests_[v] != digests_[0]) {
      mismatched |= 1u << v;
    }
  }
  if (mismatched == 0) {
    return "";
  }
  const uint32_t first = static_cast<uint32_t>(std::countr_zero(mismatched));
  std::ostringstream detail;
  if (requests_[first]->sysno != requests_[0]->sysno) {
    detail << "thread " << tid_ << ": syscall number mismatch: " << requests_[0]->ToString()
           << " (variant 0) vs " << requests_[first]->ToString() << " (variant " << first
           << ")";
  } else {
    detail << "thread " << tid_ << ": argument mismatch on " << requests_[0]->ToString()
           << " (variant 0) vs " << requests_[first]->ToString() << " (variant " << first
           << ")";
  }
  if (std::popcount(mismatched) == 1) {
    *outlier = first;
  } else {
    detail << " (+" << std::popcount(mismatched) - 1
           << " more variants diverged; multi-way divergence is never excised)";
  }
  return detail.str();
}

std::string ThreadSetMonitor::CompareSlabRoundLive(const RoundSlab& slab, uint32_t members,
                                                   uint32_t* outlier) const {
  if ((members & 1u) == 0 || !MustCompare(*slab.slots[0].request)) {
    return "";
  }
  uint32_t mismatched = 0;
  uint32_t rest = members & ~1u;
  while (rest != 0) {
    const uint32_t v = static_cast<uint32_t>(std::countr_zero(rest));
    rest &= rest - 1;
    if (slab.slots[v].request->sysno != slab.slots[0].request->sysno ||
        slab.slots[v].digest != slab.slots[0].digest) {
      mismatched |= 1u << v;
    }
  }
  if (mismatched == 0) {
    return "";
  }
  const uint32_t first = static_cast<uint32_t>(std::countr_zero(mismatched));
  std::ostringstream detail;
  if (slab.slots[first].request->sysno != slab.slots[0].request->sysno) {
    detail << "thread " << tid_
           << ": syscall number mismatch: " << slab.slots[0].request->ToString()
           << " (variant 0) vs " << slab.slots[first].request->ToString() << " (variant "
           << first << ")";
  } else {
    detail << "thread " << tid_ << ": argument mismatch on "
           << slab.slots[0].request->ToString() << " (variant 0) vs "
           << slab.slots[first].request->ToString() << " (variant " << first << ")";
  }
  if (std::popcount(mismatched) == 1) {
    *outlier = first;
  } else {
    detail << " (+" << std::popcount(mismatched) - 1
           << " more variants diverged; multi-way divergence is never excised)";
  }
  return detail.str();
}

void ThreadSetMonitor::RouteSignals(const SyscallRequest& request, std::vector<int32_t>* out) {
  const bool is_kill = request.sysno == Sysno::kKill;
  // The exit round must take the lock even when nothing is pending: it
  // records this tid as gone so later kills aimed at it are dropped instead
  // of inflating pending_signal_count forever (once per thread, cold).
  const bool is_exit =
      request.sysno == Sysno::kExit || request.sysno == Sysno::kExitGroup;
  // Happy path: not a kill or exit, nothing pending anywhere — skip the
  // global mutex. A signal enqueued concurrently simply latches at this
  // thread set's next rendezvous (async delivery has no earlier deadline).
  if (!is_kill && !is_exit &&
      shared_->pending_signal_count.load(std::memory_order_acquire) == 0) {
    out->clear();
    return;
  }
  std::lock_guard<std::mutex> lock(shared_->signal_mutex);
  if (is_kill) {
    const auto target = static_cast<uint32_t>(request.arg0);
    // A kill aimed at an exited thread set has no future latch point; the
    // round decision happens once (opener/leader), so the drop is identical
    // in every variant.
    if (shared_->exited_tids.count(target) == 0) {
      shared_->pending_signals[target].push_back(static_cast<int32_t>(request.arg1));
      shared_->pending_signal_count.fetch_add(1, std::memory_order_release);
    }
  }
  if (is_exit) {
    shared_->exited_tids.insert(tid_);
  }
  auto pending = shared_->pending_signals.find(tid_);
  if (pending != shared_->pending_signals.end() && !pending->second.empty()) {
    out->assign(pending->second.begin(), pending->second.end());
    shared_->pending_signal_count.fetch_sub(pending->second.size(),
                                            std::memory_order_release);
    pending->second.clear();
  } else {
    out->clear();
  }
}

// Executes `request` in the ordering critical section of `domain`, stamping
// the (domain, timestamp) pair slaves replay against. `execute` performs the
// actual kernel call and returns its result.
template <typename ExecuteFn>
static SyscallResult StampOrdered(OrderDomain* domain, ExecuteFn&& execute) {
  std::lock_guard<std::mutex> order_lock(domain->mutex);
  SyscallResult result = execute();
  result.order_timestamp = domain->next_ts++;
  result.order_domain = domain->id;
  result.order_domain_hint = domain;
  return result;
}

// The ordering domain `request` is stamped in. Sharded mode partitions by
// resource (docs/syscall_ordering.md); the global-clock baseline maps every
// call to the single kFdNamespace domain, which reproduces the seed's cost
// profile exactly — one mutex, one counter, one replay clock per variant.
uint32_t ThreadSetMonitor::StampDomainOf(ProcessState& process, const SyscallRequest& request) {
  if (!shared_->options->sharded_order_domains) {
    return OrderDomainIds::kFdNamespace;
  }
  return shared_->kernel->OrderDomainOf(process, request);
}

SyscallResult ThreadSetMonitor::ExecuteMaster(SyscallRequest& request, SyscallClass klass,
                                              int64_t control_retval) {
  ProcessState& process = *shared_->processes[0];
  switch (klass) {
    case SyscallClass::kReplicated: {
      const bool ordering = shared_->options->order_resource_calls;
      // Descriptor-allocating replicated calls need their fd-table effect
      // ordered against the ordered open/close stream, or slave fd numbering
      // drifts: both stamp in the fd-namespace domain. sys_accept blocks, so
      // only its *allocation half* enters the critical section (two-phase
      // accept) — the §4.1 invariant (blocking never ordered) is preserved
      // because AcceptBlocking runs before any lock is taken; sys_socket is
      // non-blocking and runs entirely inside.
      if (ordering && request.sysno == Sysno::kAccept) {
        int64_t error = 0;
        auto conn = shared_->kernel->AcceptBlocking(process,
                                                    static_cast<int32_t>(request.arg0), &error);
        if (conn == nullptr) {
          SyscallResult result;
          result.retval = error;
          return result;
        }
        OrderDomain* domain =
            shared_->order_domains->FindOrCreate(OrderDomainIds::kFdNamespace);
        return StampOrdered(domain, [&] {
          SyscallResult result;
          result.retval = shared_->kernel->FinishAccept(process, std::move(conn));
          return result;
        });
      }
      if (ordering && request.sysno == Sysno::kSocket) {
        OrderDomain* domain =
            shared_->order_domains->FindOrCreate(OrderDomainIds::kFdNamespace);
        return StampOrdered(domain,
                            [&] { return shared_->kernel->Execute(process, request); });
      }
      // May block (I/O, futex). No ordering-clock critical section is held,
      // which is exactly why blocking calls must be in this class (§4.1
      // Limitations).
      return shared_->kernel->Execute(process, request);
    }

    case SyscallClass::kOrdered: {
      if (!shared_->options->order_resource_calls) {
        return shared_->kernel->Execute(process, request);
      }
      // Lamport timestamp under the resource domain's critical section:
      // conflicting calls replay in true execution order (§4.1), while —
      // under sharding — calls on disjoint resources no longer serialize
      // against each other (docs/syscall_ordering.md).
      const bool sharded = shared_->options->sharded_order_domains;
      OrderDomain* domain =
          shared_->order_domains->FindOrCreate(StampDomainOf(process, request));
      uint32_t retire_id = OrderDomainIds::kNone;
      SyscallResult result = StampOrdered(domain, [&] {
        // A close tears down its descriptor's per-fd domain; resolve the
        // victim inside the fd-namespace critical section (closes are
        // serialized here, so a racing double-close cannot retire a stale
        // id for a descriptor number that was already reused) and before
        // Execute frees the entry.
        if (sharded && request.sysno == Sysno::kClose) {
          retire_id = process.fds().OrderDomainOf(static_cast<int32_t>(request.arg0));
        }
        return shared_->kernel->Execute(process, request);
      });
      if (result.retval == 0 && retire_id != OrderDomainIds::kNone) {
        shared_->order_domains->Retire(retire_id);
      }
      return result;
    }

    case SyscallClass::kLocal:
      return shared_->kernel->Execute(process, request);

    case SyscallClass::kControl: {
      SyscallResult result;
      switch (request.sysno) {
        case Sysno::kMveeSelfAware:
          result.retval = 0;  // Master's variant index.
          break;
        case Sysno::kClone:
          result.retval = control_retval;
          break;
        default:
          result.retval = 0;
          break;
      }
      return result;
    }
  }
  return SyscallResult{};
}

std::atomic<uint64_t>& ThreadSetMonitor::SlaveClockFor(uint32_t variant,
                                                       const SyscallResult& master) {
  // The master stamps a direct domain pointer (stable until end-of-run
  // reclamation) so the replay hot path skips the table lookup.
  auto* domain = static_cast<OrderDomain*>(master.order_domain_hint);
  if (domain == nullptr) {
    domain = shared_->order_domains->FindOrCreate(master.order_domain);
  }
  return domain->SlaveClock(variant);
}

void ThreadSetMonitor::AwaitOrderClock(std::atomic<uint64_t>& clock, uint64_t want,
                                       uint32_t variant, const SyscallRequest& request,
                                       const char* what) {
  SpinWait waiter;
  DeadlineGate deadline(shared_->options->rendezvous_timeout);
  DivergenceReporter* reporter = shared_->reporter;
  while (clock.load(std::memory_order_acquire) != want) {
    if (reporter->tripped()) {
      throw VariantKilled{};
    }
    if (reporter->VariantDead(variant)) {
      // Excised (possibly from another thread set): this clock may never
      // advance again — its producers are this variant's own threads, which
      // are unwinding. Leave without a report; the caller drains the round.
      throw VariantKilled{};
    }
    if (deadline.Expired(waiter)) {
      // A stall here is the variant's own fault: the clock is advanced only
      // by this variant's sibling threads (docs/syscall_ordering.md), so the
      // variant as a whole is the stalled party.
      std::ostringstream detail;
      detail << "thread " << tid_ << ": ordering clock stall in variant " << variant
             << " on " << SysnoName(request.sysno) << " (at " << clock.load() << ", want "
             << want << ") " << what << " " << request.ToString();
      shared_->reporter->ReportVariantFailure(variant, StatusCode::kTimeout, detail.str());
      throw VariantKilled{};
    }
    waiter.Pause();
  }
}

int64_t ThreadSetMonitor::ExecuteSlave(uint32_t variant, SyscallRequest& request,
                                       SyscallClass klass, const SyscallResult& master,
                                       int64_t control_retval) {
  // Runs outside any round lock; reporting from here is safe.
  ProcessState& process = *shared_->processes[variant];
  switch (klass) {
    case SyscallClass::kReplicated: {
      // Copy only what this slave will consume: the payload prefix that fits
      // its own out buffer, straight from the master's pooled bytes.
      if (!master.out_payload.empty() && !request.out_data.empty()) {
        const size_t count = std::min(master.out_payload.size(), request.out_data.size());
        std::memcpy(request.out_data.data(), master.out_payload.data(), count);
      }
      // Shadow-fd installation must land at the same point of this variant's
      // ordered-call stream as the master's allocation did (see
      // ExecuteMaster's two-phase accept).
      const bool fd_allocating =
          request.sysno == Sysno::kAccept || request.sysno == Sysno::kSocket;
      if (fd_allocating && shared_->options->order_resource_calls && master.retval >= 0) {
        auto& clock = SlaveClockFor(variant, master);
        const uint64_t want = master.order_timestamp;
        AwaitOrderClock(clock, want, variant, request, "applying shadow fd for");
        const int64_t check = shared_->kernel->ApplyReplicatedEffect(process, request, master);
        clock.store(want + 1, std::memory_order_release);
        if (check != master.retval) {
          std::ostringstream detail;
          detail << "thread " << tid_ << ": shadow fd mismatch on " << SysnoName(request.sysno)
                 << ": master " << master.retval << " vs variant " << variant << " fd "
                 << check;
          shared_->reporter->ReportVariantFailure(variant, StatusCode::kDivergence,
                                                  detail.str());
          throw VariantKilled{};
        }
        return master.retval;
      }
      const int64_t check = shared_->kernel->ApplyReplicatedEffect(process, request, master);
      if (fd_allocating && master.retval >= 0 && check != master.retval) {
        std::ostringstream detail;
        detail << "thread " << tid_ << ": shadow fd mismatch on " << SysnoName(request.sysno)
               << ": master " << master.retval << " vs variant " << variant << " fd " << check;
        shared_->reporter->ReportVariantFailure(variant, StatusCode::kDivergence,
                                                detail.str());
        throw VariantKilled{};
      }
      return master.retval;
    }

    case SyscallClass::kOrdered: {
      if (shared_->options->order_resource_calls) {
        // Spin until this variant's private ordering clock — per-domain under
        // sharding, variant-wide otherwise — reaches the recorded timestamp
        // (§4.1). Replays of calls on disjoint domains proceed in parallel.
        auto& clock = SlaveClockFor(variant, master);
        const uint64_t want = master.order_timestamp;
        AwaitOrderClock(clock, want, variant, request, "for");
        const int64_t retval = shared_->kernel->Execute(process, request).retval;
        clock.store(want + 1, std::memory_order_release);
        return retval;
      }
      return shared_->kernel->Execute(process, request).retval;
    }

    case SyscallClass::kLocal:
      return shared_->kernel->Execute(process, request).retval;

    case SyscallClass::kControl:
      switch (request.sysno) {
        case Sysno::kMveeSelfAware:
          return variant;
        case Sysno::kClone:
          return control_retval;
        default:
          return 0;
      }
  }
  return -1;
}

int64_t ThreadSetMonitor::RunSyscallLoose(uint32_t variant, SyscallRequest& request,
                                          std::vector<int32_t>* delivered_signals) {
  const SyscallClass klass = ClassOf(request.sysno);
  DivergenceReporter* reporter = shared_->reporter;

  if (variant == 0) {
    // Leader: execute immediately into a pooled record, deposit it, never
    // wait for the followers (except for ring backpressure). The slot is
    // claimed BEFORE it is written: CanPush proves every follower has
    // advanced past this sequence, so recycling the pooled record cannot
    // race a straggling reader.
    request.PrimeComparableDigest();
    SpinWait waiter;
    std::optional<DeadlineGate> deadline;
    deadline.emplace(shared_->options->rendezvous_timeout);
    while (!loose_ring_->CanPush()) {
      if (reporter->tripped()) {
        throw VariantKilled{};
      }
      if (deadline->Expired(waiter)) {
        // Backpressure deadline: some follower stopped consuming. Name the
        // one furthest behind and excise it (docs/DESIGN.md §9); its
        // detached cursor stops gating pushes. Fatal under kShutdown.
        const uint64_t tail = loose_ring_->WriteCursor();
        uint32_t laggard = 0;
        uint64_t worst = 0;
        for (uint32_t v = 1; v < shared_->options->num_variants; ++v) {
          if (loose_ring_->ConsumerDetached(v - 1) || reporter->VariantDead(v)) {
            continue;
          }
          const uint64_t lag = tail - loose_ring_->ReadCursor(v - 1);
          if (lag >= worst) {
            worst = lag;
            laggard = v;
          }
        }
        if (laggard != 0) {
          std::ostringstream detail;
          detail << "thread " << tid_ << ": loose follower stall: variant " << laggard
                 << " is " << worst << " records behind the leader at "
                 << SysnoName(request.sysno) << " " << request.ToString();
          if (!reporter->ReportVariantFailure(laggard, StatusCode::kTimeout, detail.str())) {
            throw VariantKilled{};
          }
        }
        deadline.emplace(shared_->options->rendezvous_timeout);
        waiter.Reset();
      }
      waiter.Pause();
    }
    LooseRecord& record = loose_pool_[loose_ring_->WriteCursor() & loose_pool_mask_];
    record.signals.clear();
    record.payload.Clear();
    record.result = SyscallResult{};
    record.sysno = request.sysno;
    record.digest = request.ComparableDigest();
    record.control_retval = request.sysno == Sysno::kClone
                                ? shared_->next_tid.fetch_add(1, std::memory_order_relaxed)
                                : 0;
    counters_.Count(klass);
    // The leader's delivery point becomes everyone's: followers replay the
    // handler at the same record index.
    RouteSignals(request, &record.signals);
    if (delivered_signals != nullptr) {
      *delivered_signals = record.signals;
    }
    request.payload_pool = &record.payload;
    progress_[variant].in_master.store(true, std::memory_order_relaxed);
    record.result = ExecuteMaster(request, klass, record.control_retval);
    progress_[variant].in_master.store(false, std::memory_order_relaxed);
    const int64_t retval =
        klass == SyscallClass::kControl ? record.control_retval : record.result.retval;
    // Fault site (docs/fault_injection.md, delay-publish): hold the record
    // back before it becomes visible to the followers. Followers tolerate
    // any bounded delay — their deadline only starts counting while the
    // ring stays empty past it.
    uint64_t delay_ms = 0;
    if (FaultInjector::Global().ShouldFire(FaultSite::kDelayRingPublish, variant, &delay_ms))
        [[unlikely]] {
      std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms != 0 ? delay_ms : 1));
    }
    const bool pushed = loose_ring_->TryPush(&record);
    (void)pushed;  // CanPush held and there is a single producer.
    if (request.sysno == Sysno::kMveeSelfAware) {
      return 0;
    }
    return retval;
  }

  // Follower: consume the leader's next record for this thread set and
  // verify it matches this variant's call — asynchronously, possibly long
  // after the leader performed it.
  const size_t consumer = variant - 1;
  LooseRecord* record = nullptr;
  SpinWait waiter;
  // Two windows, not one: the leader itself may legitimately sit out a full
  // rendezvous_timeout blocked on ring backpressure before it excises the
  // laggard holding the ring, and this follower must not declare the leader
  // starved in the meantime. A mid-wait excision resets the budget — the
  // leader just resolved exactly the stall we were riding out.
  const uint32_t full = (1u << shared_->options->num_variants) - 1;
  uint32_t live_at_wait = reporter->live_mask() & full;
  std::optional<DeadlineGate> deadline;
  deadline.emplace(2 * shared_->options->rendezvous_timeout);
  while (!loose_ring_->Peek(consumer, 0, &record)) {
    if (reporter->tripped()) {
      throw VariantKilled{};
    }
    if (reporter->VariantDead(variant)) {
      throw VariantKilled{};
    }
    const uint32_t live_now = reporter->live_mask() & full;
    if (live_now != live_at_wait) {
      live_at_wait = live_now;
      deadline.emplace(2 * shared_->options->rendezvous_timeout);
      waiter.Reset();
      continue;
    }
    if (deadline->Expired(waiter)) {
      // The leader (the master) stopped producing; master failure is never
      // excisable, so this escalates to shutdown.
      std::ostringstream detail;
      detail << "thread " << tid_ << ": loose follower starved: leader (variant 0) "
             << "produced no record for variant " << variant << " waiting at "
             << SysnoName(request.sysno) << " " << request.ToString();
      reporter->ReportVariantFailure(0, StatusCode::kTimeout, detail.str());
      throw VariantKilled{};
    }
    waiter.Pause();
  }
  // The cursor must advance only after the record's last use: the slot (and
  // its pooled payload) is recycled by the leader once every consumer has
  // passed it. Advancing on the unwind path too is safe — a thrown
  // VariantKilled means this variant (or the whole MVEE) is done consuming.
  struct SlotGuard {
    BroadcastRing<LooseRecord*>* ring;
    size_t consumer;
    ~SlotGuard() { ring->Advance(consumer); }
  } guard{loose_ring_.get(), consumer};

  if (delivered_signals != nullptr) {
    *delivered_signals = record->signals;
  }

  if (record->sysno != request.sysno) {
    reporter->ReportVariantFailure(
        variant, StatusCode::kDivergence,
        "thread " + std::to_string(tid_) + ": loose-mode syscall mismatch: leader " +
            SysnoName(record->sysno) + " vs follower (variant " + std::to_string(variant) +
            ") " + request.ToString());
    throw VariantKilled{};
  }
  if (MustCompare(request) && record->digest != DepositDigest(variant, request)) {
    reporter->ReportVariantFailure(
        variant, StatusCode::kDivergence,
        "thread " + std::to_string(tid_) + ": loose-mode argument mismatch on " +
            request.ToString() + " (follower variant " + std::to_string(variant) + ")");
    throw VariantKilled{};
  }
  if (klass == SyscallClass::kControl) {
    // Handle control calls from the record directly: the record's control
    // result was fixed by the leader at deposit time.
    switch (request.sysno) {
      case Sysno::kMveeSelfAware:
        return variant;
      case Sysno::kClone:
        return record->control_retval;
      default:
        return 0;
    }
  }
  return ExecuteSlave(variant, request, klass, record->result, record->control_retval);
}

template <typename Predicate>
bool ThreadSetMonitor::AwaitSlabState(Predicate&& ready, bool timed) {
  SpinWait waiter;
  DeadlineGate deadline(shared_->options->rendezvous_timeout);
  DivergenceReporter* reporter = shared_->reporter;
  for (;;) {
    if (ready()) {
      return true;
    }
    if (reporter->tripped()) {
      throw VariantKilled{};
    }
    if (waiter.spins() < kParkAfterSpins) {
      // The PAUSE phase (first 64 steps, nanoseconds) stays deadline-blind;
      // from the first yield on every step is already a syscall, so a clock
      // read per step costs comparatively nothing — and on an oversubscribed
      // host a yield can take milliseconds, so sparser checks would let the
      // deadline slip far past its budget (and let a late-arriving sibling
      // turn a timeout verdict into a bogus divergence).
      if (timed && waiter.spins() >= 64 && deadline.ExpiredNow()) {
        return false;
      }
      waiter.Pause();
      continue;
    }
    // Spin budget exhausted: futex-style parked wait. BeginPark / re-check /
    // WaitTicket is the lost-wakeup-free discipline documented in
    // util/park.h; publishers WakeParked after every phase/epoch store.
    park_.BeginPark();
    const uint64_t ticket = park_.Ticket();
    if (ready() || reporter->tripped()) {
      park_.EndPark();
      continue;
    }
    park_.WaitTicket(ticket, kParkSlice);
    park_.EndPark();
    // Re-check readiness before the deadline: a round that completed right
    // at the wire must win over a just-expired budget — the spin path and
    // the mutex baseline's cv predicates resolve the same race the same way.
    if (ready()) {
      return true;
    }
    if (timed && deadline.ExpiredNow()) {
      return false;
    }
  }
}

bool ThreadSetMonitor::SlabGatherComplete(const RoundSlab& slab) const {
  const uint32_t full = (1u << shared_->options->num_variants) - 1;
  const uint32_t live = shared_->reporter->live_mask() & full;
  return (slab.arrivals.load(std::memory_order_seq_cst) & live) == live;
}

void ThreadSetMonitor::ExciseMissingSlab(RoundSlab& slab, uint64_t round, uint32_t variant,
                                         uint32_t live_at_wait, uint32_t* deferred_missing,
                                         const SyscallRequest& request) {
  DivergenceReporter* reporter = shared_->reporter;
  const uint32_t full = (1u << shared_->options->num_variants) - 1;
  // A waiter that was itself excised mid-round passes no verdicts: its live
  // siblings are still progressing, the round will open without it, and the
  // membership check unwinds it (the guard drains its arrival). Reporting
  // from here would let a dead variant shut the survivors down.
  if (reporter->VariantDead(variant)) {
    return;
  }
  const uint32_t live = reporter->live_mask() & full;
  if (live != live_at_wait) {
    // Membership changed while we waited: the stragglers were likely stalled
    // behind that same excision's recovery (e.g. a replay chain threaded
    // through the dead variant's rendezvous elsewhere). Grant them a fresh
    // window and forget any deferred verdict.
    *deferred_missing = 0;
    return;
  }
  const uint32_t missing = live & ~slab.arrivals.load(std::memory_order_seq_cst);
  if (missing == 0) {
    *deferred_missing = 0;
    return;  // resolved at the wire
  }
  // Escalation asymmetry (docs/DESIGN.md §9): a sole missing SLAVE is the
  // unambiguous signature of the thread set where the failure actually
  // happened — every other variant arrived here, so nothing upstream can
  // explain the absence — and is excised after one quiet window. Anything
  // else (several variants missing, or the master among them) is ambiguous:
  // the stragglers may merely sit behind the true failure's rendezvous or
  // replay chain on ANOTHER thread set, whose waiters see the singleton and
  // excise the culprit first. Those waiters defer one window; escalating
  // needs the same missing set to survive two consecutive full windows.
  const bool sole_missing_slave = std::popcount(missing) == 1 && (missing & 1u) == 0;
  if (!sole_missing_slave && missing != *deferred_missing) {
    *deferred_missing = missing;
    return;
  }
  *deferred_missing = 0;
  uint32_t pending = missing;
  bool excised_any = false;
  bool master_missing = false;
  while (pending != 0) {
    const uint32_t m = static_cast<uint32_t>(std::countr_zero(pending));
    pending &= pending - 1;
    if (m == 0) {
      // Even now, the master goes last: it is only declared stuck when no
      // excisable laggard could explain the stall.
      master_missing = true;
      continue;
    }
    std::ostringstream detail;
    detail << "thread " << tid_ << ": lockstep rendezvous timeout: variant " << m
           << " never arrived at round " << round << " (variant " << variant
           << " waiting on " << SysnoName(request.sysno) << " " << request.ToString() << ")";
    if (!reporter->ReportVariantFailure(m, StatusCode::kTimeout, detail.str(), round)) {
      throw VariantKilled{};
    }
    excised_any = true;
  }
  if (master_missing && !excised_any) {
    std::ostringstream detail;
    detail << "thread " << tid_ << ": lockstep rendezvous timeout: variant 0"
           << " never arrived at round " << round << " (variant " << variant
           << " waiting on " << SysnoName(request.sysno) << " " << request.ToString() << ")";
    // Variant 0 is never excisable: this files the fatal report.
    reporter->ReportVariantFailure(0, StatusCode::kTimeout, detail.str(), round);
    throw VariantKilled{};
  }
}

bool ThreadSetMonitor::TryOpenSlabRound(RoundSlab& slab, uint64_t round, SyscallClass klass,
                                        uint32_t variant) {
  DivergenceReporter* reporter = shared_->reporter;
  if (slab.phase.load(std::memory_order_acquire) >= kRoundOpen) {
    return false;
  }
  const uint32_t full = (1u << shared_->options->num_variants) - 1;
  SpinWait resolve;
  for (;;) {
    const uint32_t live = reporter->live_mask() & full;
    const uint32_t arrivals = slab.arrivals.load(std::memory_order_seq_cst);
    if ((arrivals & live) != live) {
      return false;
    }
    // Every live variant arrived. A dead variant may still be inside its
    // deposit window: wait those few stores out so the arrival set is frozen
    // before membership is fixed. The Dekker pairing — depositor stores
    // `gathering` then loads the live mask, we (after the mask store became
    // visible) load `gathering` — guarantees that once every dead variant's
    // flag reads false here, any deposit it starts later will see itself
    // dead and abort: no arrival bit can land after this loop exits clean
    // (docs/DESIGN.md §9).
    bool unresolved = false;
    uint32_t pending = full & ~arrivals & ~live;
    while (pending != 0) {
      const uint32_t v = static_cast<uint32_t>(std::countr_zero(pending));
      pending &= pending - 1;
      if (progress_[v].gathering.load(std::memory_order_seq_cst)) {
        unresolved = true;
      }
    }
    if (!unresolved) {
      break;
    }
    if (reporter->tripped()) {
      throw VariantKilled{};
    }
    resolve.Pause();
  }
  uint32_t expect = 0;
  if (!slab.open_claim.compare_exchange_strong(expect, 1, std::memory_order_acq_rel)) {
    return false;
  }
  // Identify the combiner before the first deposited-request dereference:
  // HoldFrameForCombiner keys an unwinding arrival's wait on this.
  slab.executor.store(variant, std::memory_order_release);

  // ---- Opener. The arrival set is frozen; sample membership fresh so a
  // variant excised between the completeness check and the claim already
  // drops out of this round (it drains without executing).
  uint32_t members =
      reporter->live_mask() & full & slab.arrivals.load(std::memory_order_seq_cst);
  uint32_t outlier = kNoOutlier;
  const std::string mismatch = CompareSlabRoundLive(slab, members, &outlier);
  if (!mismatch.empty()) {
    bool excised = false;
    if (outlier != kNoOutlier) {
      excised =
          reporter->ReportVariantFailure(outlier, StatusCode::kDivergence, mismatch, round);
    } else {
      reporter->Report(StatusCode::kDivergence, mismatch);
    }
    if (!excised) {
      throw VariantKilled{};
    }
    members &= ~(1u << outlier);
  }
  slab.members = members;
  // Control-call preprocessing shared by all variants.
  if (slab.slots[0].request->sysno == Sysno::kClone) {
    slab.control_retval = shared_->next_tid.fetch_add(1, std::memory_order_relaxed);
  }
  // Route signals exactly once per round: a kill enqueues for its target,
  // and anything pending for THIS thread set is latched so every variant
  // delivers at this same syscall boundary.
  RouteSignals(*slab.slots[0].request, &slab.signals);
  counters_.Count(klass);
  if (reporter->excision_probe_armed()) [[unlikely]] {
    // First round to open after an excision: recovery is complete.
    reporter->CompleteExcisionProbe();
  }
  slab.phase.store(kRoundOpen, std::memory_order_release);
  park_.WakeParked();
  // Flat-combining master execution: the opener — whichever variant it
  // belongs to — performs the master call itself, against the MASTER's
  // deposited request (variant-local pointers: buffers, futex word,
  // local_addr) and the master's process state. The virtual kernel is
  // executor-agnostic, and combining saves the wake-the-master-then-wake-
  // the-slaves double handoff per round — on oversubscribed hosts that
  // halves the context switches. The result (payload in the slab's pooled
  // buffer) is published with one release store; slaves read it in place —
  // no per-slave clone, no allocation. (Even an opener excised as the
  // digest outlier completes this duty before unwinding: its thread is
  // alive, and the survivors need the round.)
  SyscallRequest& master_request = *slab.slots[0].request;
  slab.payload.Clear();
  master_request.payload_pool = &slab.payload;
  progress_[variant].in_master.store(true, std::memory_order_relaxed);
  slab.master_result = ExecuteMaster(master_request, klass, slab.control_retval);
  progress_[variant].in_master.store(false, std::memory_order_relaxed);
  slab.phase.store(kRoundMasterDone, std::memory_order_release);
  park_.WakeParked();
  return true;
}

void ThreadSetMonitor::HoldFrameForCombiner(RoundSlab& slab, uint32_t variant) {
  // How long a foreign thread may read slots[variant].request: every
  // member's request feeds the opener's digest compare until kRoundOpen;
  // the MASTER's request additionally feeds the combined execution (and
  // RouteSignals / the kClone check) until kRoundMasterDone.
  const uint32_t release_phase = variant == 0 ? kRoundMasterDone : kRoundOpen;
  if (slab.phase.load(std::memory_order_acquire) >= release_phase) {
    return;  // normal completion, or the round already left the window
  }
  if (shared_->reporter->tripped()) {
    // Whole-MVEE shutdown: try to take the open claim ourselves. Winning
    // poisons the round — no opener can ever claim it, so no thread will
    // dereference our frame, and every other arrival unwinds on tripped().
    uint32_t expect = 0;
    if (slab.open_claim.compare_exchange_strong(expect, 1, std::memory_order_acq_rel)) {
      return;
    }
  } else if (slab.open_claim.load(std::memory_order_acquire) == 0) {
    // Excised (not a shutdown) with no opener in flight: any future opener
    // samples members AFTER our VariantDead publication (we only unwind
    // once it is visible), so our slot is outside its compare set. The
    // round must stay openable for the survivors — do not poison it.
    return;
  }
  // An opener holds the claim. Wait until it publishes the release phase,
  // or until it turns out to be us, or until it abandoned the round (its
  // drained bit set during unwind — after which it touches no slot). The
  // wait is bounded: blocking kernel calls are shutdown-interruptible
  // (ShutdownBlockedCalls), so the combiner always reaches one of these.
  SpinWait waiter;
  for (;;) {
    if (slab.phase.load(std::memory_order_acquire) >= release_phase) {
      return;
    }
    const uint32_t executor = slab.executor.load(std::memory_order_acquire);
    if (executor == variant) {
      return;  // we are the combiner; nobody else reads our frame
    }
    if (executor != RoundSlab::kNoExecutor &&
        (slab.drained.load(std::memory_order_acquire) & (1u << executor)) != 0) {
      return;
    }
    waiter.Pause();
  }
}

void ThreadSetMonitor::DrainSlab(RoundSlab& slab, uint64_t round, uint32_t self_bit) {
  const uint32_t prev = slab.drained.fetch_or(self_bit, std::memory_order_acq_rel);
  if ((prev & self_bit) != 0) {
    return;  // double-fire guard (unwind paths)
  }
  const uint32_t now = prev | self_bit;
  if (now != slab.arrivals.load(std::memory_order_seq_cst)) {
    return;
  }
  // Last drainer: every arrival's reads of the round state happened before
  // its drain fetch_or (acq_rel chain), and the arrival set has been frozen
  // since the round opened (deposit Dekker, docs/DESIGN.md §9), so exactly
  // one thread observes the completed bitmap and the plain resets are safe.
  for (auto& reset_slot : slab.slots) {
    reset_slot.request = nullptr;
    reset_slot.digest = 0;
  }
  slab.signals.clear();
  slab.master_result = SyscallResult{};
  slab.control_retval = 0;
  slab.members = 0;
  slab.arrivals.store(0, std::memory_order_relaxed);
  slab.drained.store(0, std::memory_order_relaxed);
  slab.open_claim.store(0, std::memory_order_relaxed);
  slab.executor.store(RoundSlab::kNoExecutor, std::memory_order_relaxed);
  slab.phase.store(kRoundGather, std::memory_order_relaxed);
  // Re-arm for round + depth; the release publishes all resets to the
  // next round's arrivers (their recycle gate acquires epoch).
  slab.epoch.store(round + kSlabRingDepth, std::memory_order_release);
  park_.WakeParked();
}

int64_t ThreadSetMonitor::RunSyscallSlab(uint32_t variant, SyscallRequest& request,
                                         std::vector<int32_t>* delivered_signals) {
  const SyscallClass klass = ClassOf(request.sysno);
  DivergenceReporter* reporter = shared_->reporter;

  // This variant's position in the round sequence is private state: exactly
  // one thread per variant serves a thread set, so no atomics are needed.
  const uint64_t round = cursors_[variant].next_round++;
  RoundSlab& slab = slabs_[round & kSlabRingMask];
  const uint32_t self_bit = 1u << variant;

  // 1. Recycle gate: the slab serves round `round` only once the last
  //    drainer of round `round - depth` re-armed it (release store on
  //    epoch). In steady state this is a single acquire load. An excised
  //    variant parked here (its siblings moved on without it) unwinds.
  if (!AwaitSlabState(
          [&] {
            return slab.epoch.load(std::memory_order_acquire) == round ||
                   reporter->VariantDead(variant);
          },
          /*timed=*/true)) {
    std::ostringstream detail;
    detail << "thread " << tid_ << ": round " << round
           << " slab never recycled for variant " << variant << " waiting on "
           << SysnoName(request.sysno) << " " << request.ToString()
           << " (stale arrivals=0x" << std::hex
           << slab.arrivals.load(std::memory_order_relaxed) << " drained=0x"
           << slab.drained.load(std::memory_order_relaxed) << std::dec << ")";
    reporter->Report(StatusCode::kTimeout, detail.str());
    throw VariantKilled{};
  }
  if (reporter->VariantDead(variant)) {
    throw VariantKilled{};
  }

  // 2. Deposit + arrive, bracketed by the gathering flag: the seq_cst
  //    store/dead-load here against TryOpenSlabRound's mask-load/gathering-
  //    load pins down that by the time a round opens, a dying variant's
  //    arrival bit has either landed (it joins the drain accounting) or can
  //    never land (docs/DESIGN.md §9). The acq_rel fetch_or makes every
  //    earlier arriver's plain slot writes visible to the opener.
  progress_[variant].gathering.store(true, std::memory_order_seq_cst);
  if (reporter->VariantDead(variant)) {
    progress_[variant].gathering.store(false, std::memory_order_seq_cst);
    throw VariantKilled{};
  }
  request.PrimeComparableDigest();
  ArrivalSlot& slot = slab.slots[variant];
  slot.request = &request;
  slot.digest = DepositDigest(variant, request);
  slot.sysno.store(request.sysno, std::memory_order_relaxed);
  slab.arrivals.fetch_or(self_bit, std::memory_order_acq_rel);
  progress_[variant].gathering.store(false, std::memory_order_seq_cst);

  // From here on this thread is part of the round's drain accounting: every
  // exit — completion, excision, shutdown — must drain, or the slab never
  // recycles for the survivors. (A pre-open exceptional drain can only
  // happen on a fatal trip, where recycling no longer matters.)
  struct DrainGuard {
    ThreadSetMonitor* self;
    RoundSlab* slab;
    uint64_t round;
    uint32_t bit;
    uint32_t variant;
    ~DrainGuard() {
      // Order matters: the frame hold must complete while this thread's
      // trap frame (the deposited request's referent) is still intact,
      // and before our drain can make us the round's last drainer.
      self->HoldFrameForCombiner(*slab, variant);
      self->DrainSlab(*slab, round, bit);
    }
  } drain_guard{this, &slab, round, self_bit, variant};

  // 3. Open the round — usually as the last arriver (the claim CAS is then
  //    uncontended); after an excision shrank the live set, as whichever
  //    waiter re-observes completeness first.
  bool opened_by_me = false;
  uint32_t deferred_missing = 0;  // timeout verdict deferred from the last window
  for (;;) {
    if (TryOpenSlabRound(slab, round, klass, variant)) {
      opened_by_me = true;
      break;
    }
    // Lockstep: no variant proceeds until all live variants made an
    // equivalent call (§2). A sibling that never arrives (crash, stall,
    // divergence through an uninstrumented sync op) trips the timeout. The
    // live mask is snapshotted per window so a mid-wait excision (from any
    // thread set) resets the stragglers' deadline instead of cascading.
    const uint32_t live_at_wait =
        reporter->live_mask() & ((1u << shared_->options->num_variants) - 1);
    if (AwaitSlabState(
            [&] {
              if (slab.phase.load(std::memory_order_acquire) >= kRoundOpen) {
                return true;
              }
              if (slab.open_claim.load(std::memory_order_acquire) != 0) {
                return false;  // opener at work; wait for its phase store
              }
              return SlabGatherComplete(slab);
            },
            /*timed=*/true)) {
      if (slab.phase.load(std::memory_order_acquire) >= kRoundOpen) {
        break;
      }
      continue;  // complete (an excision shrank the set): retry the claim
    }
    // Throws when fatal; may defer its verdict to the next window.
    ExciseMissingSlab(slab, round, variant, live_at_wait, &deferred_missing, request);
  }

  // 4. Membership check: arrived but excluded when the round opened (excised
  //    mid-gather, or the digest outlier). Leave without executing; the
  //    guard drains our arrival so the survivors can recycle.
  const uint32_t members = slab.members;
  if ((members & self_bit) == 0) {
    throw VariantKilled{};
  }

  if (!opened_by_me) {
    // Untimed: the combined master call may legitimately block in the
    // kernel (futex, accept) far longer than any rendezvous budget;
    // shutdown still interrupts via reporter->tripped() + WakeParked, and an
    // excision of THIS variant lifts the wait (skip execution, drain).
    AwaitSlabState(
        [&] {
          return slab.phase.load(std::memory_order_acquire) >= kRoundMasterDone ||
                 reporter->VariantDead(variant);
        },
        /*timed=*/false);
    if (slab.phase.load(std::memory_order_acquire) < kRoundMasterDone) {
      throw VariantKilled{};  // excised while the master was still pending
    }
  }

  // 5. Per-variant completion. The master's thread only picks up the
  //    published retval (its process state was already advanced by the
  //    combined execution); slave threads apply their local side effects.
  int64_t retval = 0;
  if (variant == 0) {
    retval = slab.master_result.retval;
  } else if (reporter->VariantDead(variant)) {
    // Excised mid-round (from another thread set): skip the replay — this
    // variant's ordering clocks may never advance again. Guard drains.
    throw VariantKilled{};
  } else {
    retval = ExecuteSlave(variant, request, klass, slab.master_result, slab.control_retval);
  }

  // 6. Copy this round's latched signals out before the guard drains — the
  //    caller delivers them once the rendezvous is fully unwound.
  if (delivered_signals != nullptr) {
    *delivered_signals = slab.signals;
  }
  return retval;
}

void ThreadSetMonitor::DrainMutexLocked(uint32_t variant) {
  const uint32_t self_bit = 1u << variant;
  if ((drained_mask_ & self_bit) != 0) {
    return;  // double-fire guard (unwind paths)
  }
  drained_mask_ |= self_bit;
  if (drained_mask_ != arrived_mask_) {
    return;
  }
  arrived_mask_ = 0;
  drained_mask_ = 0;
  round_members_ = 0;
  master_done_ = false;
  master_result_ = SyscallResult{};
  round_signals_.clear();
  std::fill(requests_.begin(), requests_.end(), nullptr);
  std::fill(digests_.begin(), digests_.end(), 0);
  phase_ = Phase::kGather;
  cv_.notify_all();
}

int64_t ThreadSetMonitor::RunSyscallMutex(uint32_t variant, SyscallRequest& request,
                                          std::vector<int32_t>* delivered_signals) {
  const SyscallClass klass = ClassOf(request.sysno);
  const uint32_t n = shared_->options->num_variants;
  const uint32_t full = (1u << n) - 1;
  const uint32_t self_bit = 1u << variant;
  const auto timeout = shared_->options->rendezvous_timeout;
  DivergenceReporter* reporter = shared_->reporter;

  std::unique_lock<std::mutex> lock(mutex_);

  // Wait for the previous round to fully drain. An excised variant parked
  // here just unwinds — it never deposited, so no accounting is owed.
  if (!cv_.wait_for(lock, timeout, [&] {
        return phase_ == Phase::kGather || reporter->tripped() ||
               reporter->VariantDead(variant);
      })) {
    std::ostringstream detail;
    detail << "thread " << tid_ << ": previous round never drained: variant " << variant
           << " waiting on " << SysnoName(request.sysno) << " " << request.ToString()
           << " (arrived=0x" << std::hex << arrived_mask_ << " drained=0x" << drained_mask_
           << std::dec << ")";
    lock.unlock();
    reporter->Report(StatusCode::kTimeout, detail.str());
    throw VariantKilled{};
  }
  if (reporter->tripped() || reporter->VariantDead(variant)) {
    throw VariantKilled{};
  }

  request.PrimeComparableDigest();
  requests_[variant] = &request;
  digests_[variant] = DepositDigest(variant, request);
  arrived_mask_ |= self_bit;

  // Gather loop. Unlike the seed's "last arriver opens", ANY depositor that
  // observes the live set fully arrived opens the round — when an excision
  // shrinks the set mid-gather, the hook's notify re-runs this evaluation on
  // whoever wakes first (docs/DESIGN.md §9). Everything here runs under
  // mutex_, which makes the membership/retraction races of the slab
  // protocol trivial.
  uint32_t deferred_missing = 0;  // timeout verdict deferred from the last window
  while (phase_ == Phase::kGather) {
    if (reporter->tripped()) {
      throw VariantKilled{};
    }
    if (reporter->VariantDead(variant)) {
      // Excised before the round opened: retract the deposit so the opener
      // never counts us, then unwind.
      requests_[variant] = nullptr;
      digests_[variant] = 0;
      arrived_mask_ &= ~self_bit;
      cv_.notify_all();
      throw VariantKilled{};
    }
    const uint32_t live = reporter->live_mask() & full;
    if ((arrived_mask_ & live) == live) {
      // Open. Compare in lockstep first (§2); a single outlier may be
      // excised, anything else is fatal.
      uint32_t outlier = kNoOutlier;
      const std::string mismatch = CompareRoundLive(live, &outlier);
      if (!mismatch.empty()) {
        bool excised = false;
        lock.unlock();  // excision hooks take mutex_; reports never under it
        if (outlier != kNoOutlier) {
          excised = reporter->ReportVariantFailure(outlier, StatusCode::kDivergence, mismatch);
        } else {
          reporter->Report(StatusCode::kDivergence, mismatch);
        }
        if (!excised) {
          throw VariantKilled{};
        }
        lock.lock();
        continue;  // live mask shrank; re-evaluate completeness
      }
      // Control-call preprocessing shared by all variants.
      if (requests_[0]->sysno == Sysno::kClone) {
        control_retval_ = shared_->next_tid.fetch_add(1, std::memory_order_relaxed);
      }
      // Route signals exactly once per round: a kill enqueues for its
      // target, and anything pending for THIS thread set is latched so
      // every variant delivers at this same syscall boundary.
      RouteSignals(*requests_[0], &round_signals_);
      counters_.Count(klass);
      if (reporter->excision_probe_armed()) [[unlikely]] {
        reporter->CompleteExcisionProbe();
      }
      round_members_ = live;
      phase_ = Phase::kExecute;
      cv_.notify_all();
      break;
    }
    // Lockstep: no variant proceeds until all live variants made an
    // equivalent call (§2). A sibling that never arrives trips the timeout
    // and is reported as the stalled party. The live mask is snapshotted per
    // window so a mid-wait excision (from any thread set) resets the
    // stragglers' deadline instead of cascading; a missing master is only
    // declared stuck when it is the sole missing variant across a full
    // quiet window (it may be collaterally delayed by the same recovery).
    const uint32_t lv_at_wait = reporter->live_mask() & full;
    if (!cv_.wait_for(lock, timeout, [&] {
          if (phase_ != Phase::kGather || reporter->tripped() ||
              reporter->VariantDead(variant)) {
            return true;
          }
          const uint32_t lv = reporter->live_mask() & full;
          return (arrived_mask_ & lv) == lv;
        })) {
      const uint32_t lv = reporter->live_mask() & full;
      if (lv != lv_at_wait) {
        deferred_missing = 0;
        continue;  // membership changed mid-wait: fresh window
      }
      const uint32_t missing = lv & ~arrived_mask_;
      if (missing == 0) {
        deferred_missing = 0;
        continue;  // resolved at the wire
      }
      // Same escalation asymmetry as the slab protocol (docs/DESIGN.md §9):
      // a sole missing slave is excised after one window; an ambiguous
      // missing set must survive two consecutive windows.
      const bool sole_missing_slave =
          std::popcount(missing) == 1 && (missing & 1u) == 0;
      if (!sole_missing_slave && missing != deferred_missing) {
        deferred_missing = missing;
        continue;
      }
      deferred_missing = 0;
      uint32_t pending = missing;
      bool excised_any = false;
      bool master_missing = false;
      lock.unlock();
      while (pending != 0) {
        const uint32_t m = static_cast<uint32_t>(std::countr_zero(pending));
        pending &= pending - 1;
        if (m == 0) {
          master_missing = true;
          continue;
        }
        std::ostringstream detail;
        detail << "thread " << tid_ << ": lockstep rendezvous timeout: variant " << m
               << " never arrived (variant " << variant << " waiting on "
               << SysnoName(request.sysno) << " " << request.ToString() << ")";
        if (!reporter->ReportVariantFailure(m, StatusCode::kTimeout, detail.str())) {
          throw VariantKilled{};
        }
        excised_any = true;
      }
      if (master_missing && !excised_any) {
        std::ostringstream detail;
        detail << "thread " << tid_ << ": lockstep rendezvous timeout: variant 0"
               << " never arrived (variant " << variant << " waiting on "
               << SysnoName(request.sysno) << " " << request.ToString() << ")";
        // Variant 0 is never excisable: this files the fatal report.
        reporter->ReportVariantFailure(0, StatusCode::kTimeout, detail.str());
        throw VariantKilled{};
      }
      lock.lock();
    }
  }

  // Membership check: deposited, but the round opened without us (excised
  // mid-gather as the digest outlier, with the retraction racing the open).
  if ((round_members_ & self_bit) == 0) {
    DrainMutexLocked(variant);
    throw VariantKilled{};
  }

  int64_t retval = 0;
  if (variant == 0) {
    lock.unlock();
    mutex_payload_.Clear();
    request.payload_pool = &mutex_payload_;
    progress_[variant].in_master.store(true, std::memory_order_relaxed);
    SyscallResult result = ExecuteMaster(request, klass, control_retval_);
    progress_[variant].in_master.store(false, std::memory_order_relaxed);
    lock.lock();
    master_result_ = result;
    master_done_ = true;
    retval = master_result_.retval;
    cv_.notify_all();
  } else {
    cv_.wait(lock, [&] {
      return master_done_ || reporter->tripped() || reporter->VariantDead(variant);
    });
    if (reporter->tripped()) {
      throw VariantKilled{};  // fatal: the whole MVEE is unwinding
    }
    if (!master_done_ && reporter->VariantDead(variant)) {
      DrainMutexLocked(variant);
      throw VariantKilled{};
    }
    // Snapshot the round's scalar result so the slave can leave the lock
    // (the round state may be reset by the time it finishes). The payload
    // is NOT cloned: the span views mutex_payload_, which is stable until
    // every variant drained — i.e. past this slave's last read.
    const SyscallResult master_copy = master_result_;
    const int64_t round_control_retval = control_retval_;
    lock.unlock();
    try {
      retval = ExecuteSlave(variant, request, klass, master_copy, round_control_retval);
    } catch (...) {
      // Excision (or shutdown) mid-replay: drain so survivors can recycle.
      lock.lock();
      DrainMutexLocked(variant);
      throw;
    }
    lock.lock();
  }

  // Copy this round's latched signals before the round state resets; the
  // caller delivers them once the rendezvous is fully unwound.
  if (delivered_signals != nullptr) {
    *delivered_signals = round_signals_;
  }
  DrainMutexLocked(variant);
  return retval;
}

int64_t ThreadSetMonitor::RunSyscall(uint32_t variant, SyscallRequest& request,
                                     std::vector<int32_t>* delivered_signals) {
  FaultInjector& faults = FaultInjector::Global();
  // Fault sites (docs/fault_injection.md). Crash: the thread unwinds
  // silently, exactly like a variant whose process died — siblings detect
  // the absence through the rendezvous timeout and excise (or shut down)
  // from there. Stall: sleep through the arrival window so siblings expire
  // first; the dead-check below then reaps the stallion on wakeup.
  if (faults.ShouldFire(FaultSite::kCrashAtSyscall, variant)) [[unlikely]] {
    throw VariantKilled{};
  }
  uint64_t stall_ms = 0;
  if (faults.ShouldFire(FaultSite::kStallArrival, variant, &stall_ms)) [[unlikely]] {
    auto delay = std::chrono::milliseconds(stall_ms);
    if (stall_ms == 0) {
      delay = 2 * std::chrono::duration_cast<std::chrono::milliseconds>(
                      shared_->options->rendezvous_timeout);
    }
    std::this_thread::sleep_for(delay);
  }

  // Heartbeat for the blocked-call watchdog: odd seq = inside the call.
  ProgressSlot& progress = progress_[variant];
  progress.sysno.store(request.sysno, std::memory_order_relaxed);
  progress.seq.fetch_add(1, std::memory_order_relaxed);
  struct HeartbeatGuard {
    std::atomic<uint64_t>* seq;
    ~HeartbeatGuard() { seq->fetch_add(1, std::memory_order_relaxed); }
  } heartbeat{&progress.seq};

  DivergenceReporter* reporter = shared_->reporter;
  // A variant arriving after shutdown must unwind, not join (and possibly
  // open) a dead MVEE's round — e.g. the stalled sibling of a rendezvous
  // timeout waking up with its sys_exit. An excised variant likewise
  // unwinds at its next syscall, wherever the excision caught it.
  if (reporter->tripped() || reporter->VariantDead(variant)) {
    throw VariantKilled{};
  }

  if (shared_->options->sync_model == SyncModel::kLoose) {
    return RunSyscallLoose(variant, request, delivered_signals);
  }
  if (shared_->options->waitfree_rendezvous) {
    return RunSyscallSlab(variant, request, delivered_signals);
  }
  return RunSyscallMutex(variant, request, delivered_signals);
}

}  // namespace mvee
