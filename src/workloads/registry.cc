// The 25 benchmark stand-ins, one per row of the paper's Table 2.
//
// Knobs are chosen so the *relative* system-call and sync-op rates across
// benchmarks track the paper's measurements: fluidanimate and radiosity are
// the sync-op monsters, dedup and water_spatial the syscall-heavy ones,
// blackscholes / radix / lu are nearly silent. The `paper_*` fields carry the
// Table 2 reference values so the bench harness can print paper-vs-measured.

#include <array>

#include "mvee/workloads/workload.h"

namespace mvee {

namespace {

constexpr WorkloadConfig kWorkloads[] = {
    // --- PARSEC 2.1 ---
    {.name = "blackscholes", .suite = "PARSEC", .shape = WorkloadShape::kDataParallel,
     .worker_threads = 4, .stages = 0, .locks = 8, .items = 60000, .work_per_item = 96,
     .sync_per_item = 0, .syscall_every = 512, .io_every = 0,
     .paper_runtime_sec = 80.83, .paper_syscall_rate_k = 2.55, .paper_sync_rate_k = 0.00},
    {.name = "bodytrack", .suite = "PARSEC", .shape = WorkloadShape::kDataParallel,
     .worker_threads = 4, .stages = 0, .locks = 32, .items = 40000, .work_per_item = 1664,
     .sync_per_item = 1, .syscall_every = 128, .io_every = 0,
     .paper_runtime_sec = 60.06, .paper_syscall_rate_k = 8.59, .paper_sync_rate_k = 202.36},
    {.name = "dedup", .suite = "PARSEC", .shape = WorkloadShape::kPipeline,
     .worker_threads = 4, .stages = 3, .locks = 16, .items = 6000, .work_per_item = 320,
     .sync_per_item = 1, .syscall_every = 0, .io_every = 1,
     .paper_runtime_sec = 18.29, .paper_syscall_rate_k = 134.27, .paper_sync_rate_k = 1052.45},
    {.name = "facesim", .suite = "PARSEC", .shape = WorkloadShape::kBarrierPhase,
     .worker_threads = 4, .stages = 0, .locks = 16, .items = 3000, .work_per_item = 1792,
     .sync_per_item = 1, .syscall_every = 64, .io_every = 0,
     .paper_runtime_sec = 142.52, .paper_syscall_rate_k = 4.14, .paper_sync_rate_k = 288.75},
    {.name = "ferret", .suite = "PARSEC", .shape = WorkloadShape::kPipeline,
     .worker_threads = 4, .stages = 4, .locks = 16, .items = 8000, .work_per_item = 3072,
     .sync_per_item = 1, .syscall_every = 256, .io_every = 0,
     .paper_runtime_sec = 103.79, .paper_syscall_rate_k = 2.29, .paper_sync_rate_k = 225.10},
    {.name = "fluidanimate", .suite = "PARSEC", .shape = WorkloadShape::kFineGrainGrid,
     .worker_threads = 4, .stages = 0, .locks = 64, .items = 120000, .work_per_item = 24,
     .sync_per_item = 1, .syscall_every = 4096, .io_every = 0,
     .paper_runtime_sec = 93.19, .paper_syscall_rate_k = 0.45, .paper_sync_rate_k = 12746.59},
    {.name = "freqmine", .suite = "PARSEC", .shape = WorkloadShape::kDataParallel,
     .worker_threads = 4, .stages = 0, .locks = 8, .items = 50000, .work_per_item = 128,
     .sync_per_item = 0, .syscall_every = 2048, .io_every = 0,
     .paper_runtime_sec = 168.66, .paper_syscall_rate_k = 0.35, .paper_sync_rate_k = 0.24},
    {.name = "raytrace", .suite = "PARSEC", .shape = WorkloadShape::kTaskQueue,
     .worker_threads = 4, .stages = 0, .locks = 16, .items = 20000, .work_per_item = 6144,
     .sync_per_item = 1, .syscall_every = 1024, .io_every = 0,
     .paper_runtime_sec = 147.54, .paper_syscall_rate_k = 0.78, .paper_sync_rate_k = 88.33},
    {.name = "streamcluster", .suite = "PARSEC", .shape = WorkloadShape::kBarrierPhase,
     .worker_threads = 4, .stages = 0, .locks = 8, .items = 8000, .work_per_item = 2048,
     .sync_per_item = 1, .syscall_every = 64, .io_every = 0,
     .paper_runtime_sec = 136.05, .paper_syscall_rate_k = 5.63, .paper_sync_rate_k = 18.78},
    {.name = "swaptions", .suite = "PARSEC", .shape = WorkloadShape::kAtomicHammer,
     .worker_threads = 4, .stages = 0, .locks = 8, .items = 40000, .work_per_item = 256,
     .sync_per_item = 8, .syscall_every = 8192, .io_every = 0,
     .paper_runtime_sec = 86.68, .paper_syscall_rate_k = 0.01, .paper_sync_rate_k = 4585.65},
    {.name = "vips", .suite = "PARSEC", .shape = WorkloadShape::kPipeline,
     .worker_threads = 4, .stages = 3, .locks = 16, .items = 10000, .work_per_item = 1248,
     .sync_per_item = 1, .syscall_every = 0, .io_every = 4,
     .paper_runtime_sec = 37.09, .paper_syscall_rate_k = 15.76, .paper_sync_rate_k = 428.69},
    {.name = "x264", .suite = "PARSEC", .shape = WorkloadShape::kPipeline,
     .worker_threads = 4, .stages = 2, .locks = 8, .items = 8000, .work_per_item = 6144,
     .sync_per_item = 1, .syscall_every = 512, .io_every = 64,
     .paper_runtime_sec = 34.73, .paper_syscall_rate_k = 0.50, .paper_sync_rate_k = 15.98},

    // --- SPLASH-2x ---
    {.name = "barnes", .suite = "SPLASH", .shape = WorkloadShape::kTaskQueue,
     .worker_threads = 4, .stages = 0, .locks = 64, .items = 40000, .work_per_item = 168,
     .sync_per_item = 4, .syscall_every = 64, .io_every = 0,
     .paper_runtime_sec = 61.15, .paper_syscall_rate_k = 19.61, .paper_sync_rate_k = 5115.99},
    {.name = "fft", .suite = "SPLASH", .shape = WorkloadShape::kBarrierPhase,
     .worker_threads = 4, .stages = 0, .locks = 8, .items = 400, .work_per_item = 32768,
     .sync_per_item = 0, .syscall_every = 0, .io_every = 0,
     .paper_runtime_sec = 40.26, .paper_syscall_rate_k = 0.01, .paper_sync_rate_k = 1.64},
    {.name = "fmm", .suite = "SPLASH", .shape = WorkloadShape::kTaskQueue,
     .worker_threads = 4, .stages = 0, .locks = 64, .items = 40000, .work_per_item = 168,
     .sync_per_item = 4, .syscall_every = 1024, .io_every = 0,
     .paper_runtime_sec = 42.68, .paper_syscall_rate_k = 0.91, .paper_sync_rate_k = 5215.01},
    {.name = "lu_cb", .suite = "SPLASH", .shape = WorkloadShape::kDataParallel,
     .worker_threads = 4, .stages = 0, .locks = 8, .items = 30000, .work_per_item = 128,
     .sync_per_item = 0, .syscall_every = 4096, .io_every = 0,
     .paper_runtime_sec = 51.16, .paper_syscall_rate_k = 0.08, .paper_sync_rate_k = 0.23},
    {.name = "lu_ncb", .suite = "SPLASH", .shape = WorkloadShape::kDataParallel,
     .worker_threads = 4, .stages = 0, .locks = 8, .items = 30000, .work_per_item = 160,
     .sync_per_item = 0, .syscall_every = 8192, .io_every = 0,
     .paper_runtime_sec = 73.55, .paper_syscall_rate_k = 0.05, .paper_sync_rate_k = 0.16},
    {.name = "ocean_cp", .suite = "SPLASH", .shape = WorkloadShape::kBarrierPhase,
     .worker_threads = 4, .stages = 0, .locks = 8, .items = 1500, .work_per_item = 8192,
     .sync_per_item = 1, .syscall_every = 128, .io_every = 0,
     .paper_runtime_sec = 39.39, .paper_syscall_rate_k = 1.21, .paper_sync_rate_k = 5.05},
    {.name = "ocean_ncp", .suite = "SPLASH", .shape = WorkloadShape::kBarrierPhase,
     .worker_threads = 4, .stages = 0, .locks = 8, .items = 1500, .work_per_item = 9216,
     .sync_per_item = 1, .syscall_every = 128, .io_every = 0,
     .paper_runtime_sec = 41.68, .paper_syscall_rate_k = 1.08, .paper_sync_rate_k = 4.55},
    {.name = "radiosity", .suite = "SPLASH", .shape = WorkloadShape::kTaskQueue,
     .worker_threads = 4, .stages = 0, .locks = 32, .items = 60000, .work_per_item = 8,
     .sync_per_item = 8, .syscall_every = 32, .io_every = 0,
     .paper_runtime_sec = 45.56, .paper_syscall_rate_k = 33.42, .paper_sync_rate_k = 18252.68},
    {.name = "radix", .suite = "SPLASH", .shape = WorkloadShape::kDataParallel,
     .worker_threads = 4, .stages = 0, .locks = 8, .items = 30000, .work_per_item = 64,
     .sync_per_item = 0, .syscall_every = 0, .io_every = 0,
     .paper_runtime_sec = 18.22, .paper_syscall_rate_k = 0.02, .paper_sync_rate_k = 0.04},
    {.name = "raytrace", .suite = "SPLASH", .shape = WorkloadShape::kTaskQueue,
     .worker_threads = 4, .stages = 0, .locks = 16, .items = 25000, .work_per_item = 1600,
     .sync_per_item = 2, .syscall_every = 128, .io_every = 0,
     .paper_runtime_sec = 52.52, .paper_syscall_rate_k = 6.63, .paper_sync_rate_k = 536.79},
    {.name = "volrend", .suite = "SPLASH", .shape = WorkloadShape::kTaskQueue,
     .worker_threads = 4, .stages = 0, .locks = 16, .items = 30000, .work_per_item = 352,
     .sync_per_item = 3, .syscall_every = 64, .io_every = 0,
     .paper_runtime_sec = 52.02, .paper_syscall_rate_k = 15.86, .paper_sync_rate_k = 1071.25},
    {.name = "water_nsquared", .suite = "SPLASH", .shape = WorkloadShape::kBarrierPhase,
     .worker_threads = 4, .stages = 0, .locks = 16, .items = 2500, .work_per_item = 12288,
     .sync_per_item = 1, .syscall_every = 256, .io_every = 0,
     .paper_runtime_sec = 182.80, .paper_syscall_rate_k = 0.88, .paper_sync_rate_k = 8.61},
    {.name = "water_spatial", .suite = "SPLASH", .shape = WorkloadShape::kDataParallel,
     .worker_threads = 4, .stages = 0, .locks = 16, .items = 20000, .work_per_item = 3072,
     .sync_per_item = 1, .syscall_every = 0, .io_every = 1,
     .paper_runtime_sec = 59.84, .paper_syscall_rate_k = 148.27, .paper_sync_rate_k = 9.63},
};

}  // namespace

std::span<const WorkloadConfig> AllWorkloads() { return kWorkloads; }

const WorkloadConfig* FindWorkload(const std::string& name) {
  // Accept "name" (first match) or "suite/name" (exact).
  for (const auto& config : kWorkloads) {
    const std::string qualified = std::string(config.suite) + "/" + config.name;
    if (name == config.name || name == qualified) {
      return &config;
    }
  }
  return nullptr;
}

}  // namespace mvee
