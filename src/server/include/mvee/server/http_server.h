// Mini multi-threaded HTTP server — the nginx-1.8 stand-in of paper §5.5.
//
// Faithful to the scenario the paper evaluates:
//   * a thread pool serves requests accepted by a dispatcher thread;
//   * inter-thread synchronization mixes pthread-style primitives (the
//     instrumented Mutex/CondVar connection queue) with *custom* primitives
//     the nginx developers wrote themselves (a spinlock + statistics
//     counters built from raw compiler atomics);
//   * the custom primitives can be built instrumented or uninstrumented.
//     Uninstrumented + multiple variants = benign divergence as soon as
//     traffic flows, exactly as the paper reports;
//   * a CVE-2013-2028-style stack-overflow handler lets an attack payload
//     corrupt a response selector. The attack is tailored to one variant's
//     (simulated) memory layout, so N>=2 diversified variants respond
//     differently and the MVEE kills them before the secret escapes.

#ifndef MVEE_SERVER_HTTP_SERVER_H_
#define MVEE_SERVER_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <string>

#include "mvee/sync/instrumented.h"
#include "mvee/variant/env.h"

namespace mvee {

// Default for ServerConfig::use_event_loop: on, unless the environment
// forces the seed's one-at-a-time dispatcher (MVEE_SERVER_EVENT_LOOP=0).
// The override lets the whole test suite sweep either serving architecture
// without edits (`MVEE_SERVER_EVENT_LOOP=0 ctest`), mirroring
// MVEE_SHARDED_VKERNEL / MVEE_WAITFREE_RENDEZVOUS; explicit assignments in
// code always win.
inline bool DefaultServerEventLoop() {
  const char* env = std::getenv("MVEE_SERVER_EVENT_LOOP");
  return env == nullptr || env[0] != '0';
}

struct ServerConfig {
  uint16_t port = 8080;
  uint32_t pool_threads = 8;   // Paper §5.5 uses 32-thread pools.
  uint32_t page_bytes = 4096;  // Static page size served (4 KiB in §5.5).
  // Expected number of connections; the server exits after serving them.
  uint32_t connection_budget = 100;
  // Instrument the custom (non-pthread) sync primitives. False reproduces
  // the §5.5 divergence: "if we do not instrument these custom
  // synchronization primitives, nginx does not function correctly when
  // running multiple variants".
  bool instrument_custom_sync = true;
  // Compile in the CVE-2013-2028-style vulnerable handler at /vuln.
  bool enable_vulnerability = false;
  // Readiness-driven serving (docs/DESIGN.md §10): one acceptor thread polls
  // the listener and distributes accepted fds to pool workers over vkernel
  // pipes; each worker multiplexes its connections with sys_poll, serving
  // HTTP/1.1 keep-alive and pipelined requests with bounded read buffers
  // (400/413 on malformed/oversized requests) and draining gracefully when
  // the budget is reached. False restores the seed dispatcher: HTTP/1.0,
  // one blocking accept at a time, one connection per worker wakeup.
  bool use_event_loop = DefaultServerEventLoop();
  // Per-connection read-buffer cap (headers + body). A request whose headers
  // never terminate inside the cap, or whose Content-Length exceeds it, is
  // answered with 413 and the connection is closed — never silently
  // truncated (event loop only; the seed dispatcher keeps its historical
  // 64 KiB silent cutoff).
  uint32_t max_request_bytes = 65536;
  // Listener backlog (the seed hardcoded 128; open-loop bursts need more).
  int32_t listen_backlog = 1024;
};

// nginx-style custom spinlock: built from compiler intrinsics rather than
// libpthread. The `instrumented` flag selects whether its atomics run
// through the sync agent (the paper's refactored build: "we identified 51
// sync ops in total") or bypass it (the stock build).
class NgxSpinlock {
 public:
  explicit NgxSpinlock(bool instrumented) : instrumented_(instrumented) {}

  void Lock();
  void Unlock();

 private:
  const bool instrumented_;
  InstrumentedAtomic<int32_t> instrumented_state_{0};
  std::atomic<int32_t> raw_state_{0};
};

// Aggregate statistics shared by the worker pool; guarded by the custom
// spinlock (as nginx guards its shared counters).
struct ServerStats {
  uint64_t requests_served = 0;
  uint64_t bytes_sent = 0;
  uint64_t vuln_hits = 0;
  // Event-loop error accounting (the seed dispatcher never rejects): 400s
  // for malformed request lines / headers, 413s for requests that exceed
  // ServerConfig::max_request_bytes.
  uint64_t bad_requests = 0;
  uint64_t oversized_requests = 0;
};

// Builds the variant program that runs the server to completion (serves
// `config.connection_budget` connections, then shuts down and writes its
// stats to "result/http_stats"). The same program also runs natively.
// `config.use_event_loop` selects between the readiness-driven event loop
// and the seed's one-at-a-time dispatcher; both write identical stats lines.
Program MakeServerProgram(const ServerConfig& config);

// The secret the attack tries to exfiltrate (stands in for nginx worker
// memory contents: keys, pointers).
std::string ServerSecret();

// The response-selector token a variant with mapping base `map_base`
// expects; the attack payload embeds the token for its victim's layout.
uint64_t LayoutToken(uint64_t map_base);

}  // namespace mvee

#endif  // MVEE_SERVER_HTTP_SERVER_H_
