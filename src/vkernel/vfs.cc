#include "mvee/vkernel/vfs.h"

#include <algorithm>
#include <cerrno>
#include <cstring>

namespace mvee {

int64_t VFile::ReadAt(uint64_t offset, uint8_t* out, uint64_t size) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (offset >= data_.size()) {
    return 0;
  }
  const uint64_t available = data_.size() - offset;
  const uint64_t n = std::min(size, available);
  std::memcpy(out, data_.data() + offset, n);
  return static_cast<int64_t>(n);
}

int64_t VFile::WriteAt(uint64_t offset, const uint8_t* data, uint64_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (offset + size > data_.size()) {
    data_.resize(offset + size);
  }
  std::memcpy(data_.data() + offset, data, size);
  return static_cast<int64_t>(size);
}

uint64_t VFile::Append(const uint8_t* data, uint64_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t offset = data_.size();
  data_.insert(data_.end(), data, data + size);
  return offset;
}

uint64_t VFile::Size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return data_.size();
}

void VFile::Truncate() {
  std::lock_guard<std::mutex> lock(mutex_);
  data_.clear();
}

std::vector<uint8_t> VFile::Contents() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return data_;
}

std::shared_ptr<VFile> Vfs::Open(const std::string& path, bool create) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(path);
  if (it != files_.end()) {
    return it->second;
  }
  if (!create) {
    return nullptr;
  }
  auto file = std::make_shared<VFile>();
  files_[path] = file;
  inodes_[path] = next_inode_++;
  return file;
}

bool Vfs::Exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return files_.count(path) != 0;
}

int64_t Vfs::Stat(const std::string& path, VStat* out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    return -ENOENT;
  }
  out->size = it->second->Size();
  out->inode = inodes_.at(path);
  return 0;
}

int64_t Vfs::Unlink(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(path);
  if (it == files_.end()) {
    return -ENOENT;
  }
  files_.erase(it);
  inodes_.erase(path);
  return 0;
}

void Vfs::PutFile(const std::string& path, std::vector<uint8_t> contents) {
  auto file = Open(path, /*create=*/true);
  file->Truncate();
  if (!contents.empty()) {
    file->Append(contents.data(), contents.size());
  }
}

size_t Vfs::FileCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return files_.size();
}

}  // namespace mvee
