#include "mvee/vkernel/fd_table.h"

#include <cerrno>

#include "mvee/syscall/record.h"

namespace mvee {

FdTable::FdTable() : next_order_domain_(OrderDomainIds::kFirstFd) {
  stdout_file_ = std::make_shared<VFile>();
  auto stdin_file = std::make_shared<VFile>();
  auto stderr_file = std::make_shared<VFile>();

  FdEntry in;
  in.kind = FdKind::kFile;
  in.file = stdin_file;
  in.path = "<stdin>";
  in.order_domain = next_order_domain_++;
  FdEntry out;
  out.kind = FdKind::kFile;
  out.file = stdout_file_;
  out.path = "<stdout>";
  out.order_domain = next_order_domain_++;
  FdEntry err;
  err.kind = FdKind::kFile;
  err.file = stderr_file;
  err.path = "<stderr>";
  err.order_domain = next_order_domain_++;
  entries_.push_back(in);
  entries_.push_back(out);
  entries_.push_back(err);
}

int32_t FdTable::Allocate(FdEntry entry) {
  std::lock_guard<std::mutex> lock(mutex_);
  entry.order_domain = next_order_domain_++;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].kind == FdKind::kFree) {
      entries_[i] = std::move(entry);
      return static_cast<int32_t>(i);
    }
  }
  entries_.push_back(std::move(entry));
  return static_cast<int32_t>(entries_.size() - 1);
}

int32_t FdTable::Dup(int32_t fd) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd < 0 || static_cast<size_t>(fd) >= entries_.size() ||
      entries_[fd].kind == FdKind::kFree) {
    return -EBADF;
  }
  FdEntry copy = entries_[fd];
  // The duplicate has its own offset/flags state in this kernel (entries are
  // copied, not shared descriptions), so it gets its own ordering domain.
  copy.order_domain = next_order_domain_++;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].kind == FdKind::kFree) {
      entries_[i] = std::move(copy);
      return static_cast<int32_t>(i);
    }
  }
  entries_.push_back(std::move(copy));
  return static_cast<int32_t>(entries_.size() - 1);
}

FdEntry* FdTable::Get(int32_t fd) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd < 0 || static_cast<size_t>(fd) >= entries_.size() ||
      entries_[fd].kind == FdKind::kFree) {
    return nullptr;
  }
  return &entries_[fd];
}

int64_t FdTable::Close(int32_t fd) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd < 0 || static_cast<size_t>(fd) >= entries_.size() ||
      entries_[fd].kind == FdKind::kFree) {
    return -EBADF;
  }
  FdEntry& entry = entries_[fd];
  // Shadow entries in slave variants carry no kernel object; guard for null.
  switch (entry.kind) {
    case FdKind::kPipeRead:
      if (entry.pipe != nullptr) {
        entry.pipe->CloseReadEnd();
      }
      break;
    case FdKind::kPipeWrite:
      if (entry.pipe != nullptr) {
        entry.pipe->CloseWriteEnd();
      }
      break;
    case FdKind::kConnServer:
      if (entry.conn != nullptr) {
        entry.conn->CloseServerSide();
      }
      break;
    case FdKind::kConnClient:
      if (entry.conn != nullptr) {
        entry.conn->CloseClientSide();
      }
      break;
    case FdKind::kListener:
      if (entry.listener != nullptr) {
        entry.listener->Close();
      }
      break;
    default:
      break;
  }
  entry = FdEntry{};
  return 0;
}

uint32_t FdTable::OrderDomainOf(int32_t fd) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd < 0 || static_cast<size_t>(fd) >= entries_.size() ||
      entries_[fd].kind == FdKind::kFree) {
    return OrderDomainIds::kNone;
  }
  return entries_[fd].order_domain;
}

size_t FdTable::LiveCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  size_t live = 0;
  for (const auto& entry : entries_) {
    if (entry.kind != FdKind::kFree) {
      ++live;
    }
  }
  return live;
}

}  // namespace mvee
