// VariableAgentMap: per-sync-variable agent routing with runtime migration
// (docs/DESIGN.md §11).
//
// The paper's Table 1 result is that WHICH replication agent handles a sync
// variable decides its overhead. The adaptive fleet therefore keeps every
// agent runtime alive and routes each *registered* variable to its own
// route entry; unregistered variables share one default entry carrying the
// fleet's configured kind. Lookup on the BeforeSyncOp hot path is a
// lock-free, allocation-free open-addressing probe into a per-variant
// address table; all mutation (registration, binding, migration) happens off
// the hot path under mutexes.
//
// Identity across variants: variants allocate their own program state, so
// the same logical variable has a different address in every variant. The
// map is therefore keyed per variant — the program binds each routed
// variable by NAME in every variant (BindVariable), and the shared route
// entry hangs off the name. An address that was never bound probes to an
// empty slot and falls through to the default entry, which is what makes the
// dispatch correct for unbound variables and programs that bind nothing.
//
// Migration handshake (the §11 epoch protocol). Every entry carries:
//   route      — one atomic word packing [kind | state | epoch],
//   inflight   — per-master-tid "I am between Before and After" flags,
//   recorded   — per-master-tid op counts,
//   replayed   — per-(slave variant, tid) op counts.
// States: kActive -> kQuiescing (masters stop entering; the Dekker-ordered
// inflight flags drain; recorded[t] is then frozen until the flip) ->
// kDraining (slaves keep replaying the already-recorded ops under the OLD
// kind) -> when every live slave's replayed[v][t] reaches recorded[t] for
// every tid, flip to (new kind, kActive). Abort anywhere before the flip
// just restores the old route: nothing was recorded under the new kind yet.
//
// The slave gate's admission rule: thread t's k-th op is admitted only once
// recorded[t] > k — i.e. only after the MASTER has recorded that same
// ordinal — and then the current route word's kind IS the kind the master
// used for ordinal k (in any state; see SlaveEnter for the proof sketch and
// docs/DESIGN.md §11 for the induction across successive migrations). A
// slave must never be admitted for an ordinal the master has not recorded:
// the route can still migrate before the master gets there, and a slave
// parked inside the OLD runtime would then wait for a record that lands in
// the NEW runtime (a permanent stall). Running ahead therefore parks in the
// gate — which costs nothing, because every recording runtime's replay wait
// would park it on the missing record anyway. The one exception is kNull
// routes (no records to chase): they keep the zero-coordination fast path
// and are migration-frozen in exchange (Migrate refuses kNull endpoints).
//
// Why per-(entry, tid) counters and not one shared op counter: concurrent
// slave threads cannot learn their own op's master-order ordinal at the gate
// without serializing the gate across the whole op (which deadlocks against
// the old agent's own ordering waits). Per-thread ordinals are exact and
// owner-written: master thread t and slave thread t execute the same program
// order, so "thread t's k-th op on this entry" is the unit of agreement.

#ifndef MVEE_AGENTS_VARIABLE_MAP_H_
#define MVEE_AGENTS_VARIABLE_MAP_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "mvee/agents/sync_agent.h"

namespace mvee {

// One static routing decision: sync variable `name` starts on `kind`.
// Produced by the analysis layer (mvee/analysis/assignment_plan.h) from a
// SyncOpReport, or written by hand; consumed by AgentFleet at construction.
struct AgentAssignment {
  std::string name;
  AgentKind kind = AgentKind::kWallOfClocks;
  // Human-readable verdict ("thread-local", "ambiguously-aliased", ...) for
  // logs and reports; not interpreted.
  std::string reason;
};

struct AgentAssignmentPlan {
  std::vector<AgentAssignment> assignments;

  bool empty() const { return assignments.empty(); }
  const AgentAssignment* Find(const std::string& name) const {
    for (const auto& assignment : assignments) {
      if (assignment.name == name) {
        return &assignment;
      }
    }
    return nullptr;
  }
};

class VariableAgentMap {
 public:
  // Route entries are preallocated handles; this caps how many distinct
  // variables a plan + runtime bindings may register (the default entry is
  // extra). Registration past the cap fails closed: the variable simply
  // keeps the default route.
  static constexpr size_t kMaxEntries = 256;

  enum class RouteState : uint8_t {
    kActive = 0,
    kQuiescing = 1,
    kDraining = 2,
  };

  struct alignas(64) PaddedCount {
    std::atomic<uint64_t> value{0};
  };

  struct Entry {
    Entry(std::string entry_name, AgentKind kind, const AgentConfig& config);

    const std::string name;
    const AgentKind seeded_kind;
    // [kind:3 | state:2 | epoch:59]. The epoch bumps on every publish and
    // doubles as a seqlock token for the slave gate's recorded-count read.
    alignas(64) std::atomic<uint64_t> route;
    // Master-side Dekker flags: inflight[t] != 0 while master thread t is
    // between MasterEnter and MasterExit. Owner-padded so masters on
    // different threads never share a line here.
    std::vector<PaddedCount> inflight;  // [max_threads]
    // Ops master thread t recorded on this entry (owner-written with
    // release; the slave gate and the quiesce scan acquire).
    std::vector<PaddedCount> recorded;  // [max_threads]
    // Ops slave thread t of variant v replayed: replayed[v-1][t]
    // (owner-written with release; the drain loop acquires).
    std::vector<std::vector<PaddedCount>> replayed;
    // Completed migrations of this entry (reporting only).
    std::atomic<uint64_t> migrations{0};
  };

  // Route-word packing helpers (exposed for tests).
  static uint64_t MakeRoute(AgentKind kind, RouteState state, uint64_t epoch) {
    return static_cast<uint64_t>(kind) | (static_cast<uint64_t>(state) << 3) | (epoch << 5);
  }
  static AgentKind RouteKind(uint64_t word) { return static_cast<AgentKind>(word & 0x7); }
  static RouteState RouteStateOf(uint64_t word) {
    return static_cast<RouteState>((word >> 3) & 0x3);
  }
  static uint64_t RouteEpoch(uint64_t word) { return word >> 5; }

  // `config` must already be validated; `default_kind` is the route of every
  // unbound variable.
  VariableAgentMap(const AgentConfig& config, AgentKind default_kind, AgentControl control);
  ~VariableAgentMap();

  VariableAgentMap(const VariableAgentMap&) = delete;
  VariableAgentMap& operator=(const VariableAgentMap&) = delete;

  Entry* DefaultEntry() { return default_entry_.get(); }

  // Registration (off the hot path, under a mutex): returns the entry for
  // `name`, creating it with `kind` if new. nullptr if kMaxEntries is
  // exhausted (the variable then rides the default route).
  Entry* EntryFor(const std::string& name, AgentKind kind);
  // nullptr if `name` was never registered.
  Entry* FindByName(const std::string& name) const;

  // Binds `addr` to `entry` in `variant`'s address table. Fails (false) on
  // table saturation or if the 8-byte bucket already belongs to a different
  // entry; a failed bind leaves the address on the default route.
  bool Bind(uint32_t variant, const void* addr, Entry* entry);

  // HOT PATH: resolves an address to its route entry; the default entry on
  // any miss. Lock-free, allocation-free, read-only.
  Entry* Find(uint32_t variant, const void* addr) const;

  // Master gate: publishes the inflight flag, loads the route (both seq_cst
  // — the Dekker pair with Migrate's quiesce), and returns the kind to
  // record under. Blocks while a migration is in flight. Throws
  // VariantKilled on abort/deadline.
  AgentKind MasterEnter(Entry* entry, uint32_t tid);
  // Bumps recorded[tid] and clears the inflight flag (release: the count is
  // visible to whoever observes the flag cleared).
  void MasterExit(Entry* entry, uint32_t tid);
  // Clears the inflight flag WITHOUT counting an op: the unwind path when
  // the routed sub-agent throws mid-op. The run is already aborting; a
  // leaked flag would merely wedge a concurrent quiesce until its timeout,
  // but clean is clean.
  void MasterCancel(Entry* entry, uint32_t tid) {
    entry->inflight[tid].value.store(0, std::memory_order_release);
  }

  // Slave gate: returns the kind to replay under — the kind the master
  // recorded this thread's same-ordinal op under. Waits while the master has
  // not recorded the ordinal yet (kNull routes excepted). Throws
  // VariantKilled on abort/deadline.
  AgentKind SlaveEnter(Entry* entry, uint32_t variant, uint32_t tid);
  void SlaveExit(Entry* entry, uint32_t variant, uint32_t tid);

  // Runs the migration handshake to move `entry` to `to`. Serialized
  // internally (one migration at a time); returns false if the route already
  // is `to`, if either endpoint is kNull (null routes are migration-frozen —
  // see the header comment), or on abort/timeout (the old route is restored
  // — safe, nothing was recorded under the new kind before the flip).
  bool Migrate(Entry* entry, AgentKind to);

  // Excision: drains stop waiting for `variant`'s replay counters.
  void DetachVariant(uint32_t variant);

  // Registered (non-default) entries, for the controller's policy sweep.
  // Entries are append-only and published with release stores, so the
  // controller iterates lock-free.
  size_t EntryCount() const { return entry_count_.load(std::memory_order_acquire); }
  Entry* EntryAt(size_t index) const {
    return entries_[index].load(std::memory_order_acquire);
  }

  uint64_t MigrationsCompleted() const {
    return migrations_done_.load(std::memory_order_relaxed);
  }
  uint64_t MigrationsAborted() const {
    return migrations_aborted_.load(std::memory_order_relaxed);
  }

 private:
  struct Table {
    std::vector<std::atomic<uint64_t>> keys;   // 8-byte-bucketed addr + 1; 0 = empty
    std::vector<std::atomic<Entry*>> values;
    size_t inserts = 0;  // Guarded by register_mutex_.
  };

  bool AbortMigration(Entry* entry, AgentKind from, uint64_t epoch, const char* phase);

  const AgentConfig config_;
  const AgentControl control_;
  std::unique_ptr<Entry> default_entry_;
  mutable std::mutex register_mutex_;
  std::atomic<Entry*> entries_[kMaxEntries] = {};
  std::atomic<size_t> entry_count_{0};
  size_t table_mask_;
  std::vector<Table> tables_;  // [num_variants]
  std::atomic<uint32_t> detached_{0};
  std::mutex migrate_mutex_;
  std::atomic<uint64_t> migrations_done_{0};
  std::atomic<uint64_t> migrations_aborted_{0};
};

}  // namespace mvee

#endif  // MVEE_AGENTS_VARIABLE_MAP_H_
