// Syscall request/result records.
//
// A variant thread that performs a virtual system call builds a
// SyscallRequest and traps into the monitor. The monitor compares the
// *comparable view* of equivalent requests across variants (paper §2: "use a
// monitor to compare the variants' behavior at the level of system calls").
//
// The comparable view must be layout-diversity-agnostic: raw pointers differ
// across variants under ASLR, so buffer arguments are compared by content
// digest + length, and in-variant addresses are compared after normalization
// to logical (base-relative) form by the variant runtime.

#ifndef MVEE_SYSCALL_RECORD_H_
#define MVEE_SYSCALL_RECORD_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "mvee/syscall/sysno.h"
#include "mvee/util/arena.h"
#include "mvee/util/hash.h"

namespace mvee {

// Operational arguments for every virtual syscall. A plain struct (not a
// variant type) keeps trap-site code simple; unused fields stay default.
struct SyscallRequest {
  Sysno sysno = Sysno::kExit;

  // Scalar arguments (fds, flags, sizes, ports, futex ops...).
  int64_t arg0 = 0;
  int64_t arg1 = 0;
  int64_t arg2 = 0;
  int64_t arg3 = 0;

  // Path-like argument (open/stat/unlink).
  std::string path;

  // Logical thread id of the caller, stamped by VariantEnv::Syscall.
  // Identical across variants by construction (the monitor assigns logical
  // tids at clone rendezvous), so it is redundant with — and excluded from —
  // the comparable digest. The kernel keys per-thread-set state on it (the
  // counted getrandom RNG streams); direct kernel calls default to stream 0.
  uint32_t tid = 0;

  // Input data (write/send/pwrite): owned by the caller for the duration of
  // the call.
  std::span<const uint8_t> in_data;

  // Output buffer (read/recv/pread): filled by the kernel (master) or from
  // the replication buffer (slaves).
  std::span<uint8_t> out_data;

  // Normalized (diversity-agnostic) address token for memory calls. The
  // variant runtime translates its diversified virtual address to this
  // logical form before trapping.
  uint64_t logical_addr = 0;

  // Raw in-variant address (munmap/mprotect target). Differs across variants
  // under ASLR, so it is *excluded* from the comparable digest; the monitor
  // compares logical_addr instead.
  uint64_t local_addr = 0;

  // Futex word the kernel re-checks under the bucket lock (sys_futex WAIT).
  // Master-variant memory; never dereferenced for slaves. Not compared.
  const std::atomic<int32_t>* futex_word = nullptr;

  // Monitor-provided pooled buffer the kernel writes replicated output
  // payloads into (round-slab / loose-record scoped; see util/arena.h).
  // nullptr (native runner, direct kernel calls) means the kernel fills only
  // out_data and the result carries no payload. Not compared.
  PayloadBuffer* payload_pool = nullptr;

  // Returns the digest the monitor compares across variants: the memoized
  // value if PrimeComparableDigest ran, a fresh computation otherwise.
  // Excludes raw pointers; includes sysno, scalars, path, logical_addr, and a
  // content digest of in_data.
  uint64_t ComparableDigest() const {
    return digest_primed_ ? primed_digest_ : ComputeComparableDigest();
  }

  // Memoizes the digest so one trap hashes its arguments at most once
  // (in_data can be kilobytes). The monitor primes on rendezvous entry,
  // after which the request's compared fields must not change — callers that
  // mutate a request (tests, builders) simply never prime it.
  void PrimeComparableDigest() {
    primed_digest_ = ComputeComparableDigest();
    digest_primed_ = true;
  }

  bool digest_primed() const { return digest_primed_; }

  uint64_t ComputeComparableDigest() const {
    FnvDigest digest;
    digest.UpdateValue(sysno);
    digest.UpdateValue(arg0);
    digest.UpdateValue(arg1);
    digest.UpdateValue(arg2);
    digest.UpdateValue(arg3);
    digest.Update(path.data(), path.size());
    digest.UpdateValue(logical_addr);
    digest.UpdateValue(static_cast<uint64_t>(in_data.size()));
    if (!in_data.empty()) {
      digest.Update(in_data.data(), in_data.size());
    }
    return digest.Finish();
  }

  // Memo for ComparableDigest (kept public so the struct stays a plain
  // aggregate-style record; managed only through the methods above).
  uint64_t primed_digest_ = 0;
  bool digest_primed_ = false;

  // Human-readable one-liner for divergence reports.
  std::string ToString() const;
};

// Well-known syscall-ordering domain ids (docs/syscall_ordering.md).
//
// Under sharded ordering the monitor partitions ordered calls by the
// resource they touch instead of funnelling them through one global clock.
// Ids below kFirstFd are process-wide domains; ids >= kFirstFd are per-fd
// domains handed out by the fd table at descriptor allocation and retired at
// close. The master stamps the domain id into every ordered result so slaves
// know which clock to replay against — slaves never compute domains locally.
struct OrderDomainIds {
  // Calls that mutate or scan the fd/path namespace (open, close, dup, pipe,
  // stat, plus the allocation half of socket/accept). Serializing these is
  // what keeps fd numbering identical across variants (§3.1).
  static constexpr uint32_t kFdNamespace = 0;
  // Address-space calls (brk/mmap/munmap/mprotect): one allocator per
  // process, so allocation order decides addresses.
  static constexpr uint32_t kMemory = 1;
  // Process-level calls (clone): the tid namespace.
  static constexpr uint32_t kProcess = 2;
  // First per-fd domain id; everything below is a fixed process-wide domain.
  static constexpr uint32_t kFirstFd = 16;
  // Sentinel for "no domain" (e.g. a close() target with no per-fd domain).
  static constexpr uint32_t kNone = UINT32_MAX;
};

// Result of a virtual syscall. retval follows the Linux convention: >= 0 on
// success, negative errno on failure.
struct SyscallResult {
  int64_t retval = 0;
  // For replicated calls: the bytes produced into the caller's out buffer,
  // viewing the pooled buffer passed via SyscallRequest::payload_pool. Valid
  // until that round/record is recycled — i.e. until every variant drained
  // the round — so slaves copy straight from the pool into their own out
  // buffers with no intermediate clone. Empty when no pool was provided.
  std::span<const uint8_t> out_payload;
  // Timestamp from the master monitor's syscall-ordering clock (kOrdered
  // calls only); slaves spin until their private clock matches (§4.1).
  // Under sharded ordering the timestamp counts within `order_domain` only.
  uint64_t order_timestamp = 0;
  // Ordering domain the timestamp belongs to (sharded ordering only; the
  // global-clock baseline leaves it at kFdNamespace and ignores it).
  uint32_t order_domain = OrderDomainIds::kFdNamespace;
  // Monitor-internal pointer to the stamped OrderDomain, letting slaves
  // replay without a domain-table lookup. Type-erased so the syscall layer
  // stays free of monitor types; never crosses the process boundary and is
  // only valid while the owning monitor lives (domains are stable until
  // end-of-run reclamation). nullptr => resolve via order_domain.
  void* order_domain_hint = nullptr;

  bool ok() const { return retval >= 0; }
};

// Counters kept by the monitor per thread-set; Table 2 of the paper reports
// syscall and sync-op rates per benchmark.
struct SyscallCounters {
  uint64_t total = 0;
  uint64_t replicated = 0;
  uint64_t ordered = 0;
  uint64_t local = 0;
  uint64_t control = 0;

  void Count(SyscallClass klass) {
    ++total;
    switch (klass) {
      case SyscallClass::kReplicated:
        ++replicated;
        break;
      case SyscallClass::kOrdered:
        ++ordered;
        break;
      case SyscallClass::kLocal:
        ++local;
        break;
      case SyscallClass::kControl:
        ++control;
        break;
    }
  }
};

// Relaxed-atomic counterpart, sharded one-per-thread-set by the monitor (the
// seed funneled every round of every thread set through one counters mutex —
// a global lock and a shared cache line on the hottest path). Cache-line
// aligned so co-located shards don't false-share; aggregated into a plain
// SyscallCounters snapshot at report time, exact once threads are quiescent.
struct alignas(64) AtomicSyscallCounters {
  std::atomic<uint64_t> total{0};
  std::atomic<uint64_t> replicated{0};
  std::atomic<uint64_t> ordered{0};
  std::atomic<uint64_t> local{0};
  std::atomic<uint64_t> control{0};

  void Count(SyscallClass klass) {
    total.fetch_add(1, std::memory_order_relaxed);
    switch (klass) {
      case SyscallClass::kReplicated:
        replicated.fetch_add(1, std::memory_order_relaxed);
        break;
      case SyscallClass::kOrdered:
        ordered.fetch_add(1, std::memory_order_relaxed);
        break;
      case SyscallClass::kLocal:
        local.fetch_add(1, std::memory_order_relaxed);
        break;
      case SyscallClass::kControl:
        control.fetch_add(1, std::memory_order_relaxed);
        break;
    }
  }

  void AccumulateInto(SyscallCounters* out) const {
    out->total += total.load(std::memory_order_relaxed);
    out->replicated += replicated.load(std::memory_order_relaxed);
    out->ordered += ordered.load(std::memory_order_relaxed);
    out->local += local.load(std::memory_order_relaxed);
    out->control += control.load(std::memory_order_relaxed);
  }

  SyscallCounters Snapshot() const {
    SyscallCounters out;
    AccumulateInto(&out);
    return out;
  }
};

}  // namespace mvee

#endif  // MVEE_SYSCALL_RECORD_H_
