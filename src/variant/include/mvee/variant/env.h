// VariantEnv: the programming interface variant code runs against.
//
// A "variant program" is a callable receiving a VariantEnv. The MVEE runs N
// diversified copies of the program, one per variant; each copy's env traps
// every virtual syscall into the monitor (paper Figure 1). Programs use the
// typed wrappers below instead of raw SyscallRequests.
//
// Thread model: env.Spawn(fn) mirrors pthread_create — it traps sys_clone
// (so the monitor can set up the new thread-set and assign a logical thread
// id consistent across variants) and then starts the variant-local thread.
// env.Join(handle) joins the variant-local thread only (no syscall; joining
// is not externally observable).

#ifndef MVEE_VARIANT_ENV_H_
#define MVEE_VARIANT_ENV_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "mvee/agents/context.h"
#include "mvee/syscall/record.h"
#include "mvee/variant/diversity.h"

namespace mvee {

class VariantEnv;

// Body of a variant thread. The env passed in belongs to the new thread.
using ThreadFn = std::function<void(VariantEnv&)>;
// Entry point of a variant program (runs as logical thread 0).
using Program = std::function<void(VariantEnv&)>;
// Signal handler body. Runs on the thread the signal was delivered to, at a
// rendezvous boundary (never mid-instruction), in every variant.
using SignalHandler = std::function<void(VariantEnv&)>;

// Opaque join handle returned by Spawn.
struct ThreadHandle {
  uint32_t tid = 0;
};

// Implemented by the monitor: receives traps from variant threads.
class TrapInterface {
 public:
  virtual ~TrapInterface() = default;
  // Executes one syscall on behalf of (variant, tid); returns the retval.
  virtual int64_t Trap(uint32_t variant, uint32_t tid, SyscallRequest& request) = 0;
  // Spawns the sibling thread for this variant after a sys_clone rendezvous
  // assigned `child_tid`.
  virtual void StartThread(uint32_t variant, uint32_t child_tid, ThreadFn fn) = 0;
  // Joins the variant-local thread `tid`.
  virtual void JoinThread(uint32_t variant, uint32_t tid) = 0;
  // Stores this variant's handler for `sig` (the function object cannot
  // travel through a SyscallRequest; the registration call itself is still
  // trapped so the monitor compares it). Default: signals unsupported.
  virtual void SetSignalHandler(uint32_t variant, int32_t sig, SignalHandler handler) {
    (void)variant;
    (void)sig;
    (void)handler;
  }
};

class VariantEnv {
 public:
  VariantEnv(TrapInterface* trap, uint32_t variant_index, uint32_t tid,
             const DiversityMap* diversity)
      : trap_(trap), variant_(variant_index), tid_(tid), diversity_(diversity) {}

  uint32_t tid() const { return tid_; }
  const DiversityMap& diversity() const { return *diversity_; }

  // Raw trap (exposed for tests and custom calls). Stamps the logical tid so
  // the kernel can key per-thread-set state (getrandom RNG streams) on it.
  int64_t Syscall(SyscallRequest& request) {
    request.tid = tid_;
    return trap_->Trap(variant_, tid_, request);
  }

  // --- File I/O ---
  int64_t Open(const std::string& path, int64_t flags);
  int64_t Close(int64_t fd);
  int64_t Read(int64_t fd, std::span<uint8_t> out);
  int64_t Write(int64_t fd, std::span<const uint8_t> data);
  int64_t Write(int64_t fd, const std::string& data);
  int64_t Pread(int64_t fd, int64_t offset, std::span<uint8_t> out);
  int64_t Pwrite(int64_t fd, int64_t offset, std::span<const uint8_t> data);
  int64_t Lseek(int64_t fd, int64_t offset, int64_t whence);
  int64_t Stat(const std::string& path);
  int64_t Unlink(const std::string& path);
  int64_t Dup(int64_t fd);
  // Returns {read_fd, write_fd} or {-errno, -errno}.
  std::pair<int64_t, int64_t> Pipe();

  // --- Memory ---
  int64_t Brk(int64_t increment);
  int64_t Mmap(uint64_t length, int64_t prot);
  int64_t Munmap(uint64_t addr, uint64_t length);
  int64_t Mprotect(uint64_t addr, uint64_t length, int64_t prot);

  // --- Time / misc ---
  int64_t GettimeofdayMicros();
  int64_t ClockGettimeNanos();
  int64_t Rdtsc();
  int64_t NanosleepNanos(int64_t nanos);
  int64_t Getrandom(std::span<uint8_t> out);
  int64_t SchedYield();
  int64_t Getpid();
  int64_t Gettid();

  // --- Sockets ---
  int64_t Socket();
  int64_t Bind(int64_t fd, uint16_t port);
  int64_t Listen(int64_t fd, int64_t backlog);
  int64_t Accept(int64_t fd);
  int64_t Connect(int64_t fd, uint16_t port);
  int64_t Send(int64_t fd, std::span<const uint8_t> data);
  int64_t Send(int64_t fd, const std::string& data);
  int64_t Recv(int64_t fd, std::span<uint8_t> out);
  int64_t Shutdown(int64_t fd);

  // Readiness multiplexing (the event-loop primitive real nginx builds on).
  // Fills each entry's `revents`; returns the ready count, 0 on timeout.
  // timeout_ms < 0 waits indefinitely, 0 polls without blocking.
  struct PollFd {
    int32_t fd = -1;
    uint8_t events = 0;   // PollEvents::kIn / kOut.
    uint8_t revents = 0;  // Filled on return (may include kHup).
  };
  int64_t Poll(std::span<PollFd> fds, int64_t timeout_ms);

  // --- Futex (used by the sync primitives' futex hook) ---
  int64_t FutexWait(const std::atomic<int32_t>* word, int32_t expected);
  int64_t FutexWake(const std::atomic<int32_t>* word, int32_t count);

  // --- Signals ---
  // Registers `handler` for `sig` (all variants must register equivalently —
  // the call is compared in lockstep like any sensitive syscall). Handlers
  // run at rendezvous boundaries, so delivery is deterministic across
  // variants even though the signal source is asynchronous.
  int64_t Sigaction(int32_t sig, SignalHandler handler);
  // Queues `sig` for logical thread `tid` (sys_tgkill). Delivered at that
  // thread's next rendezvous in every variant.
  int64_t Kill(uint32_t tid, int32_t sig);

  // --- MVEE control ---
  // The paper's self-awareness pseudo-syscall: returns this variant's index
  // (0 = master) without the variants being told at build time (§4.5).
  int64_t MveeSelfAware();

  // --- Threads ---
  ThreadHandle Spawn(ThreadFn fn);
  void Join(ThreadHandle handle);

 private:
  TrapInterface* const trap_;
  const uint32_t variant_;
  const uint32_t tid_;
  const DiversityMap* const diversity_;
};

}  // namespace mvee

#endif  // MVEE_VARIANT_ENV_H_
