#include "mvee/agents/context.h"

namespace mvee {

namespace {

SyncContext* NullContext() {
  static SyncContext context{NullAgent::Instance(), nullptr, 0};
  return &context;
}

thread_local SyncContext* tls_context = nullptr;

}  // namespace

SyncContext* SyncContext::Current() {
  return tls_context != nullptr ? tls_context : NullContext();
}

SyncContext* SyncContext::Install(SyncContext* context) {
  SyncContext* previous = tls_context;
  tls_context = context;
  return previous;
}

}  // namespace mvee
