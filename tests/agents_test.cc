// Tests for the replication agents (TO / PO / WoC) and the instrumented sync
// primitives.
//
// The core property (paper §3.2): for every pair of dependent sync ops (ops
// on the same sync variable), every slave variant replays them in the order
// the master executed them. The harness runs a master variant and S slave
// variants concurrently, each with its own copy of the program state
// (different addresses — the agents must be layout-agnostic, §4.5.1), and
// compares the per-lock acquisition orders.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "mvee/agents/agent_fleet.h"
#include "mvee/agents/context.h"
#include "mvee/monitor/mvee.h"
#include "mvee/sync/primitives.h"
#include "mvee/util/rng.h"
#include "mvee/util/variant_killed.h"

namespace mvee {
namespace {

// One variant's copy of the test program state: K locks, each protecting a
// log of acquiring tids. Allocated per variant, so addresses differ.
struct VariantProgramState {
  explicit VariantProgramState(size_t lock_count)
      : locks(lock_count), logs(lock_count) {}

  std::vector<SpinLock> locks;
  std::vector<std::vector<uint32_t>> logs;  // guarded by the matching lock
};

struct ReplayHarnessResult {
  std::vector<std::unique_ptr<VariantProgramState>> states;
  bool ok = true;
};

// Runs `threads` threads in every variant; thread t performs `ops` critical
// sections on pseudo-randomly chosen locks (the per-thread choice sequence is
// seeded by tid only, so all variants run the same per-thread program).
ReplayHarnessResult RunReplayHarness(AgentKind kind, uint32_t variants, uint32_t threads,
                                     size_t lock_count, int ops,
                                     bool sharded_recording = DefaultShardedRecording(),
                                     uint32_t max_threads = 0, uint32_t tid_offset = 0) {
  AgentConfig config;
  config.num_variants = variants;
  config.max_threads = max_threads == 0 ? threads + tid_offset : max_threads;
  config.buffer_capacity = 1 << 14;
  config.clock_count = 64;  // Small wall: force collisions on purpose.
  config.replay_deadline = std::chrono::milliseconds(20000);
  config.sharded_recording = sharded_recording;

  std::atomic<bool> abort{false};
  AgentControl control;
  control.abort_flag = &abort;

  AgentFleet fleet(kind, config, control);

  ReplayHarnessResult result;
  std::vector<std::unique_ptr<SyncAgent>> agents;
  for (uint32_t v = 0; v < variants; ++v) {
    result.states.push_back(std::make_unique<VariantProgramState>(lock_count));
    agents.push_back(fleet.CreateAgent(v));
  }

  std::vector<std::thread> workers;
  for (uint32_t v = 0; v < variants; ++v) {
    for (uint32_t logical = 0; logical < threads; ++logical) {
      const uint32_t t = logical + tid_offset;
      workers.emplace_back([&, v, t] {
        SyncContext context{agents[v].get(), nullptr, t};
        ScopedSyncContext scoped(&context);
        VariantProgramState& state = *result.states[v];
        Rng rng(1000 + t);  // Same schedule in every variant.
        try {
          for (int i = 0; i < ops; ++i) {
            const size_t lock_index = rng.NextBelow(state.locks.size());
            state.locks[lock_index].Lock();
            state.logs[lock_index].push_back(t);
            state.locks[lock_index].Unlock();
          }
        } catch (const VariantKilled&) {
          result.ok = false;
        }
      });
    }
  }
  for (auto& worker : workers) {
    worker.join();
  }
  return result;
}

// Swept over (agent kind, sharded_recording): the ticketed-ring recording
// path and the global-lock baseline must produce identical replay verdicts
// (WoC/PVO ignore the toggle; they run under both settings as a no-change
// control).
class AgentReplayTest : public ::testing::TestWithParam<std::tuple<AgentKind, bool>> {
 protected:
  AgentKind kind() const { return std::get<0>(GetParam()); }
  bool sharded() const { return std::get<1>(GetParam()); }
};

TEST_P(AgentReplayTest, SlavesReproducePerLockAcquisitionOrder) {
  const auto result = RunReplayHarness(kind(), /*variants=*/2, /*threads=*/4,
                                       /*lock_count=*/8, /*ops=*/300, sharded());
  ASSERT_TRUE(result.ok);
  const auto& master = *result.states[0];
  const auto& slave = *result.states[1];
  for (size_t lock = 0; lock < master.logs.size(); ++lock) {
    EXPECT_EQ(master.logs[lock], slave.logs[lock]) << "lock " << lock;
  }
}

TEST_P(AgentReplayTest, ThreeSlavesAllMatch) {
  const auto result = RunReplayHarness(kind(), /*variants=*/4, /*threads=*/3,
                                       /*lock_count=*/4, /*ops=*/150, sharded());
  ASSERT_TRUE(result.ok);
  for (uint32_t v = 1; v < 4; ++v) {
    for (size_t lock = 0; lock < result.states[0]->logs.size(); ++lock) {
      EXPECT_EQ(result.states[0]->logs[lock], result.states[v]->logs[lock])
          << "variant " << v << " lock " << lock;
    }
  }
}

TEST_P(AgentReplayTest, SingleThreadIsTrivial) {
  const auto result = RunReplayHarness(kind(), /*variants=*/2, /*threads=*/1,
                                       /*lock_count=*/2, /*ops=*/100, sharded());
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.states[0]->logs, result.states[1]->logs);
}

TEST_P(AgentReplayTest, HighContentionSingleLock) {
  const auto result = RunReplayHarness(kind(), /*variants=*/2, /*threads=*/4,
                                       /*lock_count=*/1, /*ops=*/200, sharded());
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.states[0]->logs[0], result.states[1]->logs[0]);
  EXPECT_EQ(result.states[0]->logs[0].size(), 800u);
}

// The OOB regression the fixed-size pending_[256] arrays used to hit: logical
// tids near the top of a max_threads > 256 config silently overran the
// per-thread scratch (and WoC/PVO's ring array). Eight real threads carry
// tids 292..299 through a 300-thread config.
TEST_P(AgentReplayTest, MaxThreadsBeyond256) {
  const auto result = RunReplayHarness(kind(), /*variants=*/2, /*threads=*/8,
                                       /*lock_count=*/4, /*ops=*/50, sharded(),
                                       /*max_threads=*/300, /*tid_offset=*/292);
  ASSERT_TRUE(result.ok);
  const auto& master = *result.states[0];
  const auto& slave = *result.states[1];
  for (size_t lock = 0; lock < master.logs.size(); ++lock) {
    EXPECT_EQ(master.logs[lock], slave.logs[lock]) << "lock " << lock;
  }
}

std::string ReplayParamName(const ::testing::TestParamInfo<std::tuple<AgentKind, bool>>& info) {
  std::string name;
  switch (std::get<0>(info.param)) {
    case AgentKind::kTotalOrder:
      name = "TotalOrder";
      break;
    case AgentKind::kPartialOrder:
      name = "PartialOrder";
      break;
    case AgentKind::kWallOfClocks:
      name = "WallOfClocks";
      break;
    case AgentKind::kPerVariableOrder:
      name = "PerVariableOrder";
      break;
    default:
      name = "Null";
      break;
  }
  return name + (std::get<1>(info.param) ? "Sharded" : "GlobalLock");
}

INSTANTIATE_TEST_SUITE_P(AllAgents, AgentReplayTest,
                         ::testing::Combine(::testing::Values(AgentKind::kTotalOrder,
                                                              AgentKind::kPartialOrder,
                                                              AgentKind::kWallOfClocks,
                                                              AgentKind::kPerVariableOrder),
                                            ::testing::Bool()),
                         ReplayParamName);

TEST(AgentStatsTest, RecordedEqualsReplayedPerSlave) {
  AgentConfig config;
  config.num_variants = 2;
  config.max_threads = 2;
  std::atomic<bool> abort{false};
  AgentControl control;
  control.abort_flag = &abort;
  AgentFleet fleet(AgentKind::kWallOfClocks, config, control);
  auto master = fleet.CreateAgent(0);
  auto slave = fleet.CreateAgent(1);

  int dummy = 0;
  for (int i = 0; i < 10; ++i) {
    master->BeforeSyncOp(0, &dummy);
    master->AfterSyncOp(0, &dummy);
  }
  for (int i = 0; i < 10; ++i) {
    slave->BeforeSyncOp(0, &dummy);
    slave->AfterSyncOp(0, &dummy);
  }
  EXPECT_EQ(fleet.StatsSnapshot().ops_recorded, 10u);
  EXPECT_EQ(fleet.StatsSnapshot().ops_replayed, 10u);
}

TEST(AgentAbortTest, AbortFlagReleasesStalledSlave) {
  AgentConfig config;
  config.num_variants = 2;
  config.max_threads = 1;
  config.replay_deadline = std::chrono::milliseconds(60000);
  std::atomic<bool> abort{false};
  AgentControl control;
  control.abort_flag = &abort;
  AgentFleet fleet(AgentKind::kWallOfClocks, config, control);
  auto slave = fleet.CreateAgent(1);

  std::atomic<bool> killed{false};
  std::thread stalled([&] {
    int dummy = 0;
    try {
      // No master recording: the slave has nothing to replay and must stall.
      slave->BeforeSyncOp(0, &dummy);
    } catch (const VariantKilled&) {
      killed.store(true);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(killed.load());
  abort.store(true);
  stalled.join();
  EXPECT_TRUE(killed.load());
}

TEST(AgentStallTest, ReplayDeadlineReportsStall) {
  AgentConfig config;
  config.num_variants = 2;
  config.max_threads = 1;
  config.replay_deadline = std::chrono::milliseconds(100);
  std::atomic<bool> abort{false};
  std::atomic<bool> stall_reported{false};
  AgentControl control;
  control.abort_flag = &abort;
  control.on_stall = [&](const std::string&) { stall_reported.store(true); };
  AgentFleet fleet(AgentKind::kTotalOrder, config, control);
  auto slave = fleet.CreateAgent(1);

  int dummy = 0;
  EXPECT_THROW(slave->BeforeSyncOp(0, &dummy), VariantKilled);
  EXPECT_TRUE(stall_reported.load());
}

TEST(WallOfClocksTest, AdjacentWordsShareAClock) {
  AgentConfig config;
  config.num_variants = 2;
  config.clock_count = 4096;
  std::atomic<bool> abort{false};
  AgentControl control;
  control.abort_flag = &abort;
  WallOfClocksRuntime runtime(config, control);
  alignas(8) int32_t words[2] = {0, 0};
  EXPECT_EQ(runtime.ClockOf(&words[0]), runtime.ClockOf(&words[1]));
}

TEST(WallOfClocksTest, ClockAssignmentIsDeterministic) {
  AgentConfig config;
  config.num_variants = 2;
  std::atomic<bool> abort{false};
  AgentControl control;
  control.abort_flag = &abort;
  WallOfClocksRuntime runtime_a(config, control);
  WallOfClocksRuntime runtime_b(config, control);
  int x = 0;
  EXPECT_EQ(runtime_a.ClockOf(&x), runtime_b.ClockOf(&x));
}

TEST(NullAgentTest, IsPureNoOp) {
  NullAgent* agent = NullAgent::Instance();
  int dummy = 0;
  agent->BeforeSyncOp(0, &dummy);
  agent->AfterSyncOp(0, &dummy);
  EXPECT_STREQ(agent->name(), "null");
}

// --- Instrumented primitives (native, NullAgent) ---

TEST(PrimitivesTest, MutexMutualExclusion) {
  Mutex mutex;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 5000; ++i) {
        LockGuard<Mutex> guard(mutex);
        ++counter;
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter, 20000);
}

TEST(PrimitivesTest, SpinLockMutualExclusion) {
  SpinLock lock;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        lock.Lock();
        ++counter;
        lock.Unlock();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter, 8000);
}

TEST(PrimitivesTest, TicketLockIsFifoUnderSingleThread) {
  TicketLock lock;
  lock.Lock();
  lock.Unlock();
  lock.Lock();
  lock.Unlock();
  SUCCEED();
}

TEST(PrimitivesTest, TicketLockMutualExclusion) {
  TicketLock lock;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        lock.Lock();
        ++counter;
        lock.Unlock();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter, 6000);
}

TEST(PrimitivesTest, TryLockContract) {
  Mutex mutex;
  EXPECT_TRUE(mutex.TryLock());
  EXPECT_FALSE(mutex.TryLock());
  mutex.Unlock();
  EXPECT_TRUE(mutex.TryLock());
  mutex.Unlock();
}

TEST(PrimitivesTest, BarrierPhases) {
  constexpr int kThreads = 4;
  Barrier barrier(kThreads);
  std::atomic<int> phase_counter{0};
  std::atomic<int> serial_count{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 10; ++round) {
        phase_counter.fetch_add(1);
        if (barrier.Arrive()) {
          serial_count.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(phase_counter.load(), kThreads * 10);
  EXPECT_EQ(serial_count.load(), 10);  // Exactly one serial thread per phase.
}

TEST(PrimitivesTest, SemaphoreBoundsConcurrency) {
  Semaphore semaphore(2);
  std::atomic<int> active{0};
  std::atomic<int> max_active{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        semaphore.Acquire();
        const int now = active.fetch_add(1) + 1;
        int expected = max_active.load();
        while (now > expected && !max_active.compare_exchange_weak(expected, now)) {
        }
        active.fetch_sub(1);
        semaphore.Release();
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_LE(max_active.load(), 2);
}

TEST(PrimitivesTest, SemaphoreTryAcquire) {
  Semaphore semaphore(1);
  EXPECT_TRUE(semaphore.TryAcquire());
  EXPECT_FALSE(semaphore.TryAcquire());
  semaphore.Release();
  EXPECT_TRUE(semaphore.TryAcquire());
}

TEST(PrimitivesTest, CondVarSignalsWaiter) {
  Mutex mutex;
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    mutex.Lock();
    while (!ready) {
      cv.Wait(mutex);
    }
    mutex.Unlock();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  mutex.Lock();
  ready = true;
  mutex.Unlock();
  cv.Signal();
  waiter.join();
  SUCCEED();
}

TEST(PrimitivesTest, CondVarBroadcastReleasesAll) {
  Mutex mutex;
  CondVar cv;
  bool go = false;
  std::atomic<int> released{0};
  std::vector<std::thread> waiters;
  for (int t = 0; t < 3; ++t) {
    waiters.emplace_back([&] {
      mutex.Lock();
      while (!go) {
        cv.Wait(mutex);
      }
      mutex.Unlock();
      released.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  mutex.Lock();
  go = true;
  mutex.Unlock();
  cv.Broadcast();
  for (auto& waiter : waiters) {
    waiter.join();
  }
  EXPECT_EQ(released.load(), 3);
}

TEST(PrimitivesTest, RwLockAllowsConcurrentReaders) {
  RwLock lock;
  lock.ReadLock();
  lock.ReadLock();  // Second reader does not deadlock.
  lock.ReadUnlock();
  lock.ReadUnlock();
  lock.WriteLock();
  lock.WriteUnlock();
}

TEST(PrimitivesTest, RwLockWriterExcludesReaders) {
  RwLock lock;
  std::atomic<bool> writer_in{false};
  std::atomic<bool> violation{false};
  std::thread writer([&] {
    for (int i = 0; i < 500; ++i) {
      lock.WriteLock();
      writer_in.store(true);
      std::this_thread::yield();
      writer_in.store(false);
      lock.WriteUnlock();
    }
  });
  std::thread reader([&] {
    for (int i = 0; i < 500; ++i) {
      lock.ReadLock();
      if (writer_in.load()) {
        violation.store(true);
      }
      lock.ReadUnlock();
    }
  });
  writer.join();
  reader.join();
  EXPECT_FALSE(violation.load());
}

TEST(PrimitivesTest, OnceFlagRunsExactlyOnce) {
  OnceFlag once;
  std::atomic<int> runs{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] { once.CallOnce([&] { runs.fetch_add(1); }); });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(runs.load(), 1);
}

TEST(PrimitivesTest, WaitGroupWaitsForAll) {
  WaitGroup group;
  std::atomic<int> done{0};
  group.Add(3);
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      done.fetch_add(1);
      group.Done();
    });
  }
  group.Wait();
  EXPECT_EQ(done.load(), 3);
  for (auto& thread : threads) {
    thread.join();
  }
}

// A recording agent that counts before/after pairing; validates that every
// primitive brackets its atomics correctly.
class CountingAgent final : public SyncAgent {
 public:
  void BeforeSyncOp(uint32_t, const void*) override {
    EXPECT_FALSE(in_op_.exchange(true));
    before_.fetch_add(1);
  }
  void AfterSyncOp(uint32_t, const void*) override {
    EXPECT_TRUE(in_op_.exchange(false));
    after_.fetch_add(1);
  }
  AgentRole role() const override { return AgentRole::kMaster; }
  const char* name() const override { return "counting"; }

  uint64_t before() const { return before_.load(); }
  uint64_t after() const { return after_.load(); }

 private:
  std::atomic<uint64_t> before_{0};
  std::atomic<uint64_t> after_{0};
  std::atomic<bool> in_op_{false};
};

TEST(InstrumentationTest, EveryAtomicIsBracketed) {
  CountingAgent agent;
  SyncContext context{&agent, nullptr, 0};
  ScopedSyncContext scoped(&context);

  Mutex mutex;
  mutex.Lock();
  mutex.Unlock();
  SpinLock spin;
  spin.Lock();
  spin.Unlock();
  Semaphore sem(1);
  sem.Acquire();
  sem.Release();

  EXPECT_GT(agent.before(), 0u);
  EXPECT_EQ(agent.before(), agent.after());
}

TEST(InstrumentationTest, InstrumentedAtomicOps) {
  CountingAgent agent;
  SyncContext context{&agent, nullptr, 0};
  ScopedSyncContext scoped(&context);

  InstrumentedAtomic<int32_t> value(5);
  EXPECT_EQ(value.Load(), 5);
  value.Store(7);
  EXPECT_EQ(value.Exchange(9), 7);
  int32_t expected = 9;
  EXPECT_TRUE(value.CompareExchange(expected, 11));
  expected = 100;
  EXPECT_FALSE(value.CompareExchange(expected, 0));
  EXPECT_EQ(expected, 11);  // Updated with the observed value.
  EXPECT_EQ(value.FetchAdd(3), 11);
  EXPECT_EQ(value.FetchSub(4), 14);
  EXPECT_EQ(value.FetchOr(0x20), 10);
  EXPECT_EQ(value.Load(), 0x2a);
  // 9 instrumented ops: Load, Store, Exchange, 2x CompareExchange, FetchAdd,
  // FetchSub, FetchOr, Load.
  EXPECT_EQ(agent.before(), 9u);
  EXPECT_EQ(agent.before(), agent.after());
}

// --- Per-variable-order address table ---

TEST(PerVariableTableTest, DistinctVariablesGetDistinctClocks) {
  AgentConfig config;
  config.num_variants = 2;
  config.max_threads = 4;
  config.clock_count = 1024;  // Table capacity = 8192 slots.
  std::atomic<bool> abort{false};
  AgentControl control;
  control.abort_flag = &abort;
  PerVariableRuntime runtime(config, control);

  std::vector<int64_t> variables(500);
  std::set<uint32_t> clocks;
  for (const auto& v : variables) {
    clocks.insert(runtime.ClockOf(&v));
  }
  // int64_t variables occupy distinct 8-byte buckets, so each must get its
  // own clock: the collision-free property WoC gives up by hashing.
  EXPECT_EQ(clocks.size(), variables.size());
  EXPECT_EQ(runtime.VariablesMapped(), variables.size());
  EXPECT_EQ(runtime.TableOverflows(), 0u);
}

TEST(PerVariableTableTest, SameVariableAlwaysSameClock) {
  AgentConfig config;
  config.num_variants = 2;
  std::atomic<bool> abort{false};
  AgentControl control;
  control.abort_flag = &abort;
  PerVariableRuntime runtime(config, control);

  int64_t variable = 0;
  const uint32_t first = runtime.ClockOf(&variable);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(runtime.ClockOf(&variable), first);
  }
  EXPECT_EQ(runtime.VariablesMapped(), 1u);
}

TEST(PerVariableTableTest, AdjacentWordsShareAnEightByteBucket) {
  AgentConfig config;
  config.num_variants = 2;
  std::atomic<bool> abort{false};
  AgentControl control;
  control.abort_flag = &abort;
  PerVariableRuntime runtime(config, control);

  // Two 32-bit variables in one 64-bit line map to one clock — the paper's
  // deliberate CMPXCHG8B bucketing (§4.5) is preserved in the PVO table.
  alignas(8) int32_t pair[2] = {0, 0};
  EXPECT_EQ(runtime.ClockOf(&pair[0]), runtime.ClockOf(&pair[1]));
  EXPECT_EQ(runtime.VariablesMapped(), 1u);
}

TEST(PerVariableTableTest, SaturatedTableDegradesToSharedClocks) {
  AgentConfig config;
  config.num_variants = 2;
  config.clock_count = 1;  // Table capacity clamps to 8 slots.
  std::atomic<bool> abort{false};
  AgentControl control;
  control.abort_flag = &abort;
  PerVariableRuntime runtime(config, control);
  ASSERT_EQ(runtime.table_capacity(), 8u);

  std::vector<int64_t> variables(64);
  for (const auto& v : variables) {
    const uint32_t clock = runtime.ClockOf(&v);
    EXPECT_LT(clock, runtime.table_capacity());
  }
  // More variables than slots: the table must have overflowed, and the
  // fallback keeps returning valid (shared) clock ids rather than failing.
  EXPECT_GT(runtime.TableOverflows(), 0u);
  EXPECT_LE(runtime.VariablesMapped(), runtime.table_capacity());
}

TEST(PerVariableTableTest, OverflowCountsVariablesNotLookups) {
  AgentConfig config;
  config.num_variants = 2;
  config.clock_count = 1;  // Table capacity clamps to 8 slots.
  std::atomic<bool> abort{false};
  AgentControl control;
  control.abort_flag = &abort;
  PerVariableRuntime runtime(config, control);

  // Fill the table, then find one address that overflows.
  std::vector<int64_t> variables(64);
  const int64_t* overflowed = nullptr;
  for (const auto& v : variables) {
    const uint64_t before = runtime.TableOverflows();
    runtime.ClockOf(&v);
    if (runtime.TableOverflows() > before) {
      overflowed = &v;
      break;
    }
  }
  ASSERT_NE(overflowed, nullptr);

  // Hammering the same saturated variable must not inflate the counter: it
  // reports variables, not calls (the old behaviour counted every lookup).
  const uint64_t after_first = runtime.TableOverflows();
  const uint32_t clock = runtime.ClockOf(overflowed);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(runtime.ClockOf(overflowed), clock);
  }
  EXPECT_EQ(runtime.TableOverflows(), after_first);
}

TEST(PerVariableTableTest, HugeClockCountClampsInsteadOfOverflowing) {
  // Small sizes behave as before: next power of two >= 8x clocks.
  EXPECT_EQ(PerVariableRuntime::TableCapacityFor(1), 8u);
  EXPECT_EQ(PerVariableRuntime::TableCapacityFor(1024), 8192u);
  EXPECT_EQ(PerVariableRuntime::TableCapacityFor(1000), 8192u);
  // clock_count * 8 would wrap size_t here; the capacity must clamp to the
  // max table size (a power of two), not wrap to a tiny table with an
  // all-wrong mask (and NextPow2 must not loop forever on it).
  const size_t huge = PerVariableRuntime::TableCapacityFor(SIZE_MAX / 2);
  ASSERT_GT(huge, 0u);
  EXPECT_EQ(huge & (huge - 1), 0u);
  EXPECT_EQ(huge, PerVariableRuntime::TableCapacityFor(SIZE_MAX));
  EXPECT_LE(huge, size_t{1} << 28);
}

// --- Ticketed sharded recording (docs/DESIGN.md §8) ---

TEST(ShardedRecordingTest, TicketCounterMatchesOpsRecorded) {
  AgentConfig config;
  config.num_variants = 2;
  config.max_threads = 2;
  config.sharded_recording = true;
  std::atomic<bool> abort{false};
  AgentControl control;
  control.abort_flag = &abort;

  TotalOrderRuntime to_runtime(config, control);
  auto to_master = to_runtime.CreateAgent(0);
  auto to_slave = to_runtime.CreateAgent(1);
  int var_a = 0;
  int var_b = 0;
  for (int i = 0; i < 10; ++i) {
    to_master->BeforeSyncOp(0, &var_a);
    to_master->AfterSyncOp(0, &var_a);
    to_master->BeforeSyncOp(1, &var_b);
    to_master->AfterSyncOp(1, &var_b);
  }
  // Every recorded op drew exactly one ticket; sequences are dense.
  EXPECT_EQ(to_runtime.SequencesIssued(), 20u);
  EXPECT_EQ(to_runtime.OpsRecorded(), 20u);
  // Replay drains both per-thread rings in ticket order.
  for (int i = 0; i < 10; ++i) {
    to_slave->BeforeSyncOp(0, &var_a);
    to_slave->AfterSyncOp(0, &var_a);
    to_slave->BeforeSyncOp(1, &var_b);
    to_slave->AfterSyncOp(1, &var_b);
  }
  EXPECT_EQ(to_runtime.stats().Aggregate().ops_replayed, 20u);

  PartialOrderRuntime po_runtime(config, control);
  auto po_master = po_runtime.CreateAgent(0);
  for (int i = 0; i < 7; ++i) {
    po_master->BeforeSyncOp(0, &var_a);
    po_master->AfterSyncOp(0, &var_a);
  }
  EXPECT_EQ(po_runtime.SequencesIssued(), 7u);
}

TEST(ShardedRecordingTest, BaselineIssuesNoTickets) {
  AgentConfig config;
  config.num_variants = 2;
  config.max_threads = 1;
  config.sharded_recording = false;
  std::atomic<bool> abort{false};
  AgentControl control;
  control.abort_flag = &abort;
  TotalOrderRuntime runtime(config, control);
  auto master = runtime.CreateAgent(0);
  auto slave = runtime.CreateAgent(1);
  int var = 0;
  for (int i = 0; i < 5; ++i) {
    master->BeforeSyncOp(0, &var);
    master->AfterSyncOp(0, &var);
    slave->BeforeSyncOp(0, &var);
    slave->AfterSyncOp(0, &var);
  }
  EXPECT_EQ(runtime.SequencesIssued(), 0u);
  EXPECT_EQ(runtime.OpsRecorded(), 5u);
  EXPECT_EQ(runtime.stats().Aggregate().ops_replayed, 5u);
}

// Both-toggle verdict/output equivalence under a full MVEE run (mirrors the
// vkernel toggle sweep): for TO and PO, the ticketed-ring path and the
// global-lock baseline must reach the same verdict and program output.
std::string RecordingSweepResult(AgentKind kind, bool sharded_recording) {
  MveeOptions options;
  options.num_variants = 2;
  options.agent = kind;
  options.enable_aslr = false;
  options.rendezvous_timeout = std::chrono::milliseconds(20000);
  options.agent_config.replay_deadline = std::chrono::milliseconds(20000);
  options.agent_config.sharded_recording = sharded_recording;
  Mvee mvee(options);
  const Status status = mvee.Run([](VariantEnv& env) {
    auto mutex_a = std::make_shared<Mutex>();
    auto mutex_b = std::make_shared<Mutex>();
    auto counter_a = std::make_shared<int>(0);
    auto counter_b = std::make_shared<int>(0);
    auto worker = [&](int which) {
      return [mutex_a, mutex_b, counter_a, counter_b, which](VariantEnv& wenv) {
        for (int i = 0; i < 40; ++i) {
          if ((i + which) % 2 == 0) {
            LockGuard<Mutex> guard(*mutex_a);
            ++*counter_a;
          } else {
            LockGuard<Mutex> guard(*mutex_b);
            ++*counter_b;
          }
        }
        wenv.Gettid();
      };
    };
    ThreadHandle a = env.Spawn(worker(0));
    ThreadHandle b = env.Spawn(worker(1));
    env.Join(a);
    env.Join(b);
    const int64_t fd = env.Open("recording_sweep", VOpenFlags::kCreate | VOpenFlags::kWrite);
    env.Write(fd, std::to_string(*counter_a) + "," + std::to_string(*counter_b));
    env.Close(fd);
  });
  EXPECT_TRUE(status.ok()) << AgentKindName(kind) << " sharded=" << sharded_recording << ": "
                           << status.ToString();
  if (!status.ok()) {
    return "<failed>";
  }
  auto file = mvee.kernel().vfs().Open("recording_sweep", false);
  if (file == nullptr) {
    return "<missing>";
  }
  const auto contents = file->Contents();
  return std::string(contents.begin(), contents.end());
}

// A logical tid past max_threads must kill the variant with a reported
// configuration failure, not index past the tid-sized per-thread state
// (the monitor allocates tids from an unbounded counter).
TEST(ShardedRecordingTest, TidBeyondMaxThreadsKillsVariantLoudly) {
  for (AgentKind kind : {AgentKind::kTotalOrder, AgentKind::kPartialOrder,
                         AgentKind::kWallOfClocks, AgentKind::kPerVariableOrder}) {
    for (bool sharded : {true, false}) {
      AgentConfig config;
      config.num_variants = 2;
      config.max_threads = 2;
      config.buffer_capacity = 1 << 8;
      config.sharded_recording = sharded;
      std::atomic<bool> abort{false};
      std::atomic<bool> reported{false};
      AgentControl control;
      control.abort_flag = &abort;
      control.on_stall = [&](const std::string&) { reported.store(true); };
      AgentFleet fleet(kind, config, control);
      auto master = fleet.CreateAgent(0);
      int var = 0;
      EXPECT_THROW(master->BeforeSyncOp(/*tid=*/2, &var), VariantKilled)
          << AgentKindName(kind) << " sharded=" << sharded;
      EXPECT_TRUE(reported.load()) << AgentKindName(kind) << " sharded=" << sharded;
    }
  }
}

// A variant count past BroadcastRing's consumer limit must clamp coherently
// everywhere (agent runtimes AND the monitor's variant loop) instead of
// indexing past the runtimes' per-slave state.
TEST(ShardedRecordingTest, ExcessiveVariantCountClampsCoherently) {
  for (AgentKind kind : {AgentKind::kTotalOrder, AgentKind::kPartialOrder}) {
    MveeOptions options;
    options.num_variants = 20;  // > 16 (1 master + kMaxConsumers slaves)
    options.agent = kind;
    options.enable_aslr = false;
    Mvee mvee(options);
    const Status status = mvee.Run([](VariantEnv& env) { env.Gettid(); });
    EXPECT_TRUE(status.ok()) << AgentKindName(kind) << ": " << status.ToString();
  }
}

TEST(ShardedRecordingTest, VerdictAndOutputEquivalenceUnderMvee) {
  for (AgentKind kind : {AgentKind::kTotalOrder, AgentKind::kPartialOrder}) {
    const std::string sharded = RecordingSweepResult(kind, true);
    const std::string baseline = RecordingSweepResult(kind, false);
    EXPECT_EQ(sharded, "40,40") << AgentKindName(kind);
    EXPECT_EQ(sharded, baseline) << AgentKindName(kind);
  }
}

TEST(PerVariableTableTest, ConcurrentInsertsAgreeOnMapping) {
  AgentConfig config;
  config.num_variants = 2;
  config.clock_count = 2048;
  std::atomic<bool> abort{false};
  AgentControl control;
  control.abort_flag = &abort;
  PerVariableRuntime runtime(config, control);

  constexpr size_t kVars = 256;
  std::vector<int64_t> variables(kVars);
  std::vector<std::vector<uint32_t>> seen(4, std::vector<uint32_t>(kVars));
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < kVars; ++i) {
        // Threads race to insert the same addresses in different orders.
        const size_t index = (t % 2 == 0) ? i : kVars - 1 - i;
        seen[t][index] = runtime.ClockOf(&variables[index]);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  for (int t = 1; t < 4; ++t) {
    EXPECT_EQ(seen[t], seen[0]) << "thread " << t;
  }
  EXPECT_EQ(runtime.VariablesMapped(), kVars);
}

}  // namespace
}  // namespace mvee
