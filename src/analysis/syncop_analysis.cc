#include "mvee/analysis/syncop_analysis.h"

#include <sstream>

#include "mvee/analysis/points_to.h"

namespace mvee {

SyncOpReport IdentifySyncOps(const MirModule& module, const SyncOpAnalysisOptions& options) {
  SyncOpReport report;
  report.module_name = module.name;

  PointsToAnalysis points_to(module);
  report.stats = points_to.stats();

  // Stage 1: mark type (i) and (ii) instructions; collect the objects their
  // pointer operands may reference — the seed set of sync variables.
  for (const auto& function : module.functions) {
    for (size_t i = 0; i < function.instructions.size(); ++i) {
      const MirInst& inst = function.instructions[i];
      if (inst.op == MirOp::kLockRmw) {
        report.type_i.push_back({function.name, i, inst.source_line, inst.op});
        for (int32_t obj : points_to.PointsTo(inst.ptr)) {
          report.sync_objects.insert(obj);
        }
      } else if (inst.op == MirOp::kXchg) {
        report.type_ii.push_back({function.name, i, inst.source_line, inst.op});
        for (int32_t obj : points_to.PointsTo(inst.ptr)) {
          report.sync_objects.insert(obj);
        }
      }
    }
  }

  // Volatile extension (§4.3): volatile objects are sync variables too.
  if (options.treat_volatile_as_sync) {
    for (size_t obj = 0; obj < module.objects.size(); ++obj) {
      if (module.objects[obj].is_volatile) {
        report.sync_objects.insert(static_cast<int32_t>(obj));
      }
    }
  }

  // Stage 2: an aligned load/store is a type (iii) sync op iff it may alias
  // a sync variable.
  for (const auto& function : module.functions) {
    for (size_t i = 0; i < function.instructions.size(); ++i) {
      const MirInst& inst = function.instructions[i];
      if (inst.op != MirOp::kLoad && inst.op != MirOp::kStore) {
        continue;
      }
      if (points_to.MayPointInto(inst.ptr, report.sync_objects)) {
        report.type_iii.push_back({function.name, i, inst.source_line, inst.op});
      } else {
        ++report.unmarked_memops;
      }
    }
  }
  return report;
}

std::string FormatTable3(const std::vector<SyncOpReport>& reports) {
  std::ostringstream out;
  out << "Module                     (i)    (ii)   (iii)  solver\n";
  out << "-------------------------------------------------------\n";
  for (const auto& report : reports) {
    out << report.module_name;
    for (size_t pad = report.module_name.size(); pad < 25; ++pad) {
      out << ' ';
    }
    char row[128];
    std::snprintf(row, sizeof(row), "%6zu %6zu %6zu  %s iters=%llu\n", report.type_i.size(),
                  report.type_ii.size(), report.type_iii.size(), report.stats.solver.c_str(),
                  static_cast<unsigned long long>(report.stats.solver_iterations));
    out << row;
  }
  return out.str();
}

}  // namespace mvee
