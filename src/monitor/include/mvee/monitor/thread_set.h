// ThreadSetMonitor: one monitor per set of equivalent variant threads.
//
// ReMon is "a multithreaded monitor ... each of ReMon's threads monitors one
// set of equivalent variant threads" (paper §4). Here the monitor is passive
// (runs on the trapping variant threads themselves, like the decentralized
// designs of §2) but the unit of monitoring is the same: all variants' copies
// of logical thread T rendezvous here on every syscall.
//
// Round protocol:
//   1. gather    — every variant deposits its request; the last arriver
//                  compares the diversity-normalized argument digests
//                  (divergence => MVEE shutdown) and opens the round.
//   2. execute   — class-dependent:
//        kReplicated: master executes against the kernel (may block); the
//                     result + output bytes are published to the slaves,
//                     which apply local side effects only (§4.1).
//        kOrdered:    master executes inside the syscall-ordering critical
//                     section of the resource's ordering domain (or the
//                     global one when sharding is off) and publishes its
//                     Lamport timestamp; each slave spins until its private
//                     clock for that domain matches, executes locally, and
//                     increments the clock (§4.1, docs/syscall_ordering.md).
//        kLocal:      every variant executes locally, unordered.
//        kControl:    handled by the monitor itself (self-aware, clone,
//                     exit) without touching the kernel.
//   3. drain     — the last consumer resets the round.
//
// Two lockstep implementations of that protocol coexist, selected by
// MveeOptions::waitfree_rendezvous:
//   * Round slabs (default): a small ring of epoch-numbered, cache-padded
//     round structs. Variants arrive with one fetch_or, whichever thread
//     completes the live set claims the open (open_claim CAS), compares
//     digests and opens execution with a release store, slaves spin on the
//     slab's phase word (SpinWait) and fall back to a futex-style parked
//     wait after the spin budget. No mutex, no condvar, no allocation on
//     the happy path. Protocol walkthrough + memory ordering argument:
//     docs/DESIGN.md §6.
//   * Mutex/condvar (waitfree_rendezvous = false): the seed's protocol,
//     kept as an in-process measurable baseline (bench_rendezvous).
//
// Failure model (docs/DESIGN.md §9): round membership is the reporter's
// live-variant mask, sampled when a round opens. A variant that crashes,
// stalls past the rendezvous budget, or diverges alone from the master is
// reported through DivergenceReporter::ReportVariantFailure; under the
// kExcise policy it leaves the live mask and every subsequent round opens
// without it, while the survivors keep running in lockstep. Under kShutdown
// (the default, the paper's posture) the same paths escalate to the classic
// fatal report.

#ifndef MVEE_MONITOR_THREAD_SET_H_
#define MVEE_MONITOR_THREAD_SET_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "mvee/monitor/options.h"
#include "mvee/monitor/order_domain.h"
#include "mvee/monitor/reporter.h"
#include "mvee/syscall/record.h"
#include "mvee/util/arena.h"
#include "mvee/util/park.h"
#include "mvee/util/spsc_ring.h"
#include "mvee/vkernel/vkernel.h"

namespace mvee {

// Shared pieces every ThreadSetMonitor needs; owned by Mvee.
struct MonitorShared {
  const MveeOptions* options = nullptr;
  VirtualKernel* kernel = nullptr;
  DivergenceReporter* reporter = nullptr;
  std::vector<ProcessState*> processes;  // per variant

  // Syscall-ordering domains (§4.1, docs/syscall_ordering.md): one
  // timestamp counter + per-variant replay clock per conflicting resource.
  // The global-clock baseline (!options->sharded_order_domains) routes every
  // ordered call through the single kFdNamespace domain — one mutex, one
  // counter, one replay clock per variant, i.e. the seed's cost profile.
  OrderDomainTable* order_domains = nullptr;

  // Logical tid allocator for sys_clone (identical across variants because
  // it is assigned once per rendezvous).
  std::atomic<uint32_t> next_tid{1};

  // Deferred asynchronous signals, keyed by target logical tid. Enqueued by
  // sys_tgkill rendezvous or by Mvee::RaiseSignal (the external-source
  // case); latched into the target thread set's next round so every variant
  // delivers the handler at the same syscall boundary — the way GHUMVEE-
  // style monitors make async signal delivery deterministic.
  //
  // pending_signal_count mirrors the number of queued signals so the
  // per-round latch (RouteSignals) can skip the global mutex entirely when
  // nothing is pending and the round is not a kill — the overwhelmingly
  // common case. A signal enqueued concurrently with that skip simply lands
  // at the target's NEXT rendezvous, which is within the async-delivery
  // contract.
  std::mutex signal_mutex;
  std::map<uint32_t, std::deque<int32_t>> pending_signals;
  std::atomic<uint64_t> pending_signal_count{0};
  // Logical tids whose thread sets processed their exit round. Kills aimed
  // at them are dropped (nobody will ever latch them) — otherwise one
  // undeliverable signal would hold pending_signal_count above zero forever
  // and silently disable every thread set's lock-free latch fast path.
  std::set<uint32_t> exited_tids;
};

class ThreadSetMonitor {
 public:
  ThreadSetMonitor(uint32_t tid, MonitorShared* shared);

  // Executes one syscall for (variant, this thread set) under the configured
  // synchronization model. Lockstep blocks until the round completes; loose
  // mode lets the leader run ahead (ring-buffered). Throws VariantKilled on
  // MVEE shutdown. If `delivered_signals` is non-null it receives the
  // signals latched for this round; the caller (Mvee::Trap) runs the
  // variant's handlers for them after the round — the rendezvous *is* the
  // deterministic delivery point.
  int64_t RunSyscall(uint32_t variant, SyscallRequest& request,
                     std::vector<int32_t>* delivered_signals = nullptr);

  // Wakes all parked threads (reporter shutdown hook).
  void NotifyShutdown();

  // Excision hook (docs/DESIGN.md §9): wakes every waiter so gather loops
  // re-evaluate round completeness against the shrunken live mask, and
  // detaches the dead variant's loose-mode ring cursor so the leader's
  // backpressure stops waiting for it. Runs on the excising thread, outside
  // the reporter lock and outside this monitor's mutex.
  void OnVariantExcised(uint32_t variant);

  // Blocked-call heartbeat (watchdog input). `seq` is odd while the variant
  // is inside RunSyscall; a stuck call shows the same odd seq across sweeps.
  struct CallProgress {
    uint64_t seq = 0;
    Sysno sysno = Sysno::kExit;
    bool in_call = false;
    bool in_master = false;  // executing the combined master call (never excisable)
  };
  CallProgress Progress(uint32_t variant) const;

  // One-line state snapshot ("tid=3 phase=exec arrived=2/2 master_done=1
  // last=sys_futex") for hang diagnostics.
  std::string DebugString();

  // Adds this thread set's round counts into `out` (report aggregation).
  void AccumulateCounters(SyscallCounters* out) const { counters_.AccumulateInto(out); }

  uint32_t tid() const { return tid_; }

 private:
  // --- Wait-free round slabs (waitfree_rendezvous) -------------------------

  // How far a drained round's state survives before its slab is recycled.
  // Lockstep keeps at most two rounds in flight per thread set (a variant
  // cannot arrive at round r+1 before draining round r), so a shallow ring
  // suffices; depth 4 keeps the recycle gate comfortably off the hot path.
  static constexpr uint32_t kSlabRingDepth = 4;
  static constexpr uint32_t kSlabRingMask = kSlabRingDepth - 1;

  // Monotonic per-round phases (the slab's state word).
  enum : uint32_t {
    kRoundGather = 0,     // collecting arrivals
    kRoundOpen = 1,       // digests matched; execution may start
    kRoundMasterDone = 2  // master result published
  };

  // One variant's deposit, padded so concurrent arrivals never share a line.
  // `request` points at the arriving thread's stack and is valid only within
  // the round (arrival RMW to slab reset); `sysno` mirrors it as an atomic so
  // diagnostics (DebugString) can name in-flight calls without dereferencing
  // a possibly-retired pointer.
  struct alignas(64) ArrivalSlot {
    SyscallRequest* request = nullptr;
    uint64_t digest = 0;
    std::atomic<Sysno> sysno{Sysno::kExit};
  };

  // One in-flight round. All non-atomic fields are handed between variants
  // exclusively through the release/acquire edges on `arrivals`, `phase`,
  // `drained`, and `epoch` (docs/DESIGN.md §6).
  struct RoundSlab {
    // The round number this slab currently serves; advanced by
    // +kSlabRingDepth by the last drainer (release) — the arrival gate that
    // makes slab reuse safe.
    alignas(64) std::atomic<uint64_t> epoch{0};
    // Phase word slaves spin on; advanced with release stores only.
    alignas(64) std::atomic<uint32_t> phase{kRoundGather};
    std::atomic<uint32_t> arrivals{0};  // bitmap of arrived variants
    std::atomic<uint32_t> drained{0};   // bitmap of drained arrivals
    // Open claim: whoever observes the live set fully arrived CASes 0 -> 1
    // and becomes the opener. With a static membership the last arriver
    // always wins this CAS uncontended; the claim exists so that when an
    // excision shrinks the live set, any already-arrived waiter can open the
    // round instead (docs/DESIGN.md §9).
    std::atomic<uint32_t> open_claim{0};
    // The opener's variant index, stored (release) immediately after the
    // claim CAS and before the opener's first dereference of a deposited
    // request. Exists for HoldFrameForCombiner: an arrival unwinding
    // exceptionally must know whether the opener is itself, still running
    // (wait for the phase), or already drained (its drained bit is set).
    static constexpr uint32_t kNoExecutor = 0xffffffffu;
    std::atomic<uint32_t> executor{kNoExecutor};
    // The live mask sampled by the opener; published by the kRoundOpen
    // release store. Arrived variants outside the mask drain without
    // executing and unwind.
    uint32_t members = 0;
    // Round data (no locks; see the handoff edges above):
    alignas(64) int64_t control_retval = 0;
    SyscallResult master_result;
    PayloadBuffer payload;           // master_result.out_payload views this
    std::vector<int32_t> signals;    // latched for this round; capacity kept
    std::vector<ArrivalSlot> slots;  // one per variant
  };

  // Each variant's private position in the round sequence. Written only by
  // that variant's (single) thread for this set; padded against sharing.
  struct alignas(64) VariantCursor {
    uint64_t next_round = 0;
  };

  // Per-variant heartbeat + deposit-window flag, padded against sharing.
  // `seq`/`sysno`/`in_master` feed the watchdog (relaxed; a heuristic).
  // `gathering` is load-bearing: it brackets the deposit (slot write +
  // arrival fetch_or) with seq_cst stores, forming the Dekker pair with the
  // opener's live-mask/gathering reads that pins down whether a dying
  // variant's arrival bit lands before the round opens or never lands at
  // all (docs/DESIGN.md §9).
  struct alignas(64) ProgressSlot {
    std::atomic<uint64_t> seq{0};
    std::atomic<Sysno> sysno{Sysno::kExit};
    std::atomic<bool> in_master{false};
    std::atomic<bool> gathering{false};
  };

  int64_t RunSyscallSlab(uint32_t variant, SyscallRequest& request,
                         std::vector<int32_t>* delivered_signals);

  // True when every live variant's arrival bit is set for this slab.
  bool SlabGatherComplete(const RoundSlab& slab) const;

  // Attempts to claim and open the slab round: samples membership, waits
  // out dead variants mid-deposit, compares digests (excising a single
  // outlier when policy permits), publishes kRoundOpen and runs the
  // combined master call. Returns true iff this thread was the opener.
  bool TryOpenSlabRound(RoundSlab& slab, uint64_t round, SyscallClass klass,
                        uint32_t variant);

  // Gather-timeout escalation (docs/DESIGN.md §9). A dead caller reports
  // nothing (it keeps waiting for the round to open without it); a live-mask
  // change since `live_at_wait` grants the stragglers a fresh window; a sole
  // missing slave — the signature of the thread set where the failure
  // actually happened — is excised after one window; an ambiguous missing
  // set (several variants, or the master among them) must persist unchanged
  // across two consecutive windows (tracked in `*deferred_missing`) before
  // its slaves are excised, and the master is fatal only when no excisable
  // laggard could explain the stall. Throws VariantKilled when the policy
  // escalates to a fatal report.
  void ExciseMissingSlab(RoundSlab& slab, uint64_t round, uint32_t variant,
                         uint32_t live_at_wait, uint32_t* deferred_missing,
                         const SyscallRequest& request);

  // Marks `self_bit` drained; the thread whose drain completes the arrival
  // set recycles the slab for round + depth.
  void DrainSlab(RoundSlab& slab, uint64_t round, uint32_t self_bit);

  // Called on every exit from a slab round, BEFORE DrainSlab, while the
  // caller's trap frame (which `slots[variant].request` points into) is
  // still alive. On normal completion this is a no-op; on an exceptional
  // unwind it holds the frame until no foreign thread can still read it:
  // the opener dereferences every member's deposited request during the
  // digest compare (pre-kRoundOpen) and keeps executing against the
  // MASTER's request until kRoundMasterDone (flat combining). Unwinding
  // through that window frees a stack another thread is reading — the
  // cause of rare shutdown-race segfaults under poll-heavy servers.
  void HoldFrameForCombiner(RoundSlab& slab, uint32_t variant);

  // Spins (then parks) until `ready()` holds. Returns false on rendezvous
  // timeout when `timed`; throws VariantKilled on MVEE shutdown. The
  // untimed form is for waiting on the master, which may legitimately block
  // in the kernel (futex, accept) for longer than any rendezvous budget.
  template <typename Predicate>
  bool AwaitSlabState(Predicate&& ready, bool timed);

  // Digest comparison across the slab's arrival slots, restricted to
  // `members` (opener only). On mismatch returns a non-empty detail; when
  // exactly one member disagrees with the master, `*outlier` names it so
  // the caller can attempt excision instead of shutdown (a multi-way
  // divergence leaves *outlier untouched and is always fatal — the master
  // is as likely wrong as any slave).
  std::string CompareSlabRoundLive(const RoundSlab& slab, uint32_t members,
                                   uint32_t* outlier) const;

  // --- Mutex/condvar baseline (waitfree_rendezvous = false) ----------------

  int64_t RunSyscallMutex(uint32_t variant, SyscallRequest& request,
                          std::vector<int32_t>* delivered_signals);

  // Digest comparison for the gathered round restricted to `members` (with
  // mutex_ held); same outlier contract as CompareSlabRoundLive.
  std::string CompareRoundLive(uint32_t members, uint32_t* outlier) const;

  // Marks `variant` drained under mutex_; the drain that completes the
  // arrival mask resets the round. Lock must be held.
  void DrainMutexLocked(uint32_t variant);

  // --- Shared helpers ------------------------------------------------------

  // Returns true if this request's arguments must be compared under the
  // configured policy.
  bool MustCompare(const SyscallRequest& request) const;

  // Master-side execution; returns the master's result (out_payload viewing
  // request.payload_pool). `control_retval` is the round's pre-assigned
  // control result (clone tid). Runs unlocked.
  SyscallResult ExecuteMaster(SyscallRequest& request, SyscallClass klass,
                              int64_t control_retval);

  // Slave-side execution from the master's published result. Runs outside
  // any lock so that divergence reports never occur while one is held.
  int64_t ExecuteSlave(uint32_t variant, SyscallRequest& request, SyscallClass klass,
                       const SyscallResult& master, int64_t control_retval);

  // The domain the master stamps `request` in: resolved per resource under
  // sharded ordering, always kFdNamespace under the global-clock baseline.
  uint32_t StampDomainOf(ProcessState& process, const SyscallRequest& request);

  // The replay clock a slave must spin on for `master`'s stamped ordering
  // position (the stamped domain's per-variant clock).
  std::atomic<uint64_t>& SlaveClockFor(uint32_t variant, const SyscallResult& master);

  // Spins (DeadlineGate-amortized) until `clock` reaches `want`; reports a
  // timeout/shutdown and throws VariantKilled if it never does. `what`
  // labels the wait in the stall report.
  void AwaitOrderClock(std::atomic<uint64_t>& clock, uint64_t want, uint32_t variant,
                       const SyscallRequest& request, const char* what);

  // VARAN-style loose path: leader deposits records, followers consume and
  // verify asynchronously (§2's reliability-oriented model).
  int64_t RunSyscallLoose(uint32_t variant, SyscallRequest& request,
                          std::vector<int32_t>* delivered_signals);

  // One leader-deposited record in loose mode. Records live in a
  // preallocated pool indexed by ring sequence — the ring carries bare
  // pointers and the retirement gate (every consumer advanced past the
  // slot) makes reuse safe, so the loose hot path allocates nothing: no
  // per-call shared_ptr, no payload vector clone.
  struct LooseRecord {
    Sysno sysno = Sysno::kExit;
    uint64_t digest = 0;
    int64_t control_retval = 0;
    SyscallResult result;
    PayloadBuffer payload;         // result.out_payload views this
    std::vector<int32_t> signals;  // latched at the leader's delivery point
  };

  // Enqueues a kill's signal (round preprocessing, exactly once) and pops
  // everything pending for this thread set into `out`. Lock-free when no
  // signals are in flight (see MonitorShared::pending_signal_count).
  void RouteSignals(const SyscallRequest& request, std::vector<int32_t>* out);

  // The comparable digest of `request`, with the corrupt-digest fault site
  // applied (docs/fault_injection.md): one relaxed-load branch when the
  // fault layer is disarmed.
  uint64_t DepositDigest(uint32_t variant, const SyscallRequest& request) const;

  const uint32_t tid_;
  MonitorShared* const shared_;

  // Round counters for this thread set (relaxed; one Count per round by the
  // opener/leader, aggregated into MveeReport at the end of the run).
  AtomicSyscallCounters counters_;

  // Slab state (waitfree path).
  std::vector<RoundSlab> slabs_;
  std::vector<VariantCursor> cursors_;
  ParkingSpot park_;

  // Per-variant heartbeat / deposit-window flags (both protocols).
  std::vector<ProgressSlot> progress_;

  // Mutex baseline state.
  std::mutex mutex_;
  std::condition_variable cv_;
  enum class Phase { kGather, kExecute, kDone };
  Phase phase_ = Phase::kGather;
  uint32_t arrived_mask_ = 0;      // bitmap of deposited variants
  uint32_t drained_mask_ = 0;      // bitmap of drained variants
  uint32_t round_members_ = 0;     // live mask sampled when the round opened
  std::vector<SyscallRequest*> requests_;
  std::vector<uint64_t> digests_;
  SyscallResult master_result_;
  PayloadBuffer mutex_payload_;  // master_result_.out_payload views this
  bool master_done_ = false;
  int64_t control_retval_ = 0;  // clone tid etc., shared by all variants
  std::vector<int32_t> round_signals_;  // Signals latched for this round.

  // Loose mode: one ring + record pool per thread set; consumer v-1 belongs
  // to variant v.
  std::unique_ptr<BroadcastRing<LooseRecord*>> loose_ring_;
  std::vector<LooseRecord> loose_pool_;
  uint64_t loose_pool_mask_ = 0;
};

}  // namespace mvee

#endif  // MVEE_MONITOR_THREAD_SET_H_
