#include "mvee/variant/env.h"
#include <cstring>
#include <vector>

#include "mvee/syscall/sysno.h"

namespace mvee {

namespace {

SyscallRequest Make(Sysno sysno) {
  SyscallRequest request;
  request.sysno = sysno;
  return request;
}

}  // namespace

int64_t VariantEnv::Open(const std::string& path, int64_t flags) {
  SyscallRequest request = Make(Sysno::kOpen);
  request.path = path;
  request.arg0 = flags;
  return Syscall(request);
}

int64_t VariantEnv::Close(int64_t fd) {
  SyscallRequest request = Make(Sysno::kClose);
  request.arg0 = fd;
  return Syscall(request);
}

int64_t VariantEnv::Read(int64_t fd, std::span<uint8_t> out) {
  SyscallRequest request = Make(Sysno::kRead);
  request.arg0 = fd;
  request.arg1 = static_cast<int64_t>(out.size());
  request.out_data = out;
  return Syscall(request);
}

int64_t VariantEnv::Write(int64_t fd, std::span<const uint8_t> data) {
  SyscallRequest request = Make(Sysno::kWrite);
  request.arg0 = fd;
  request.arg1 = static_cast<int64_t>(data.size());
  request.in_data = data;
  return Syscall(request);
}

int64_t VariantEnv::Write(int64_t fd, const std::string& data) {
  return Write(fd, std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(data.data()),
                                            data.size()));
}

int64_t VariantEnv::Pread(int64_t fd, int64_t offset, std::span<uint8_t> out) {
  SyscallRequest request = Make(Sysno::kPread);
  request.arg0 = fd;
  request.arg1 = offset;
  request.arg2 = static_cast<int64_t>(out.size());
  request.out_data = out;
  return Syscall(request);
}

int64_t VariantEnv::Pwrite(int64_t fd, int64_t offset, std::span<const uint8_t> data) {
  SyscallRequest request = Make(Sysno::kPwrite);
  request.arg0 = fd;
  request.arg1 = offset;
  request.arg2 = static_cast<int64_t>(data.size());
  request.in_data = data;
  return Syscall(request);
}

int64_t VariantEnv::Lseek(int64_t fd, int64_t offset, int64_t whence) {
  SyscallRequest request = Make(Sysno::kLseek);
  request.arg0 = fd;
  request.arg1 = offset;
  request.arg2 = whence;
  return Syscall(request);
}

int64_t VariantEnv::Stat(const std::string& path) {
  SyscallRequest request = Make(Sysno::kStat);
  request.path = path;
  return Syscall(request);
}

int64_t VariantEnv::Unlink(const std::string& path) {
  SyscallRequest request = Make(Sysno::kUnlink);
  request.path = path;
  return Syscall(request);
}

int64_t VariantEnv::Dup(int64_t fd) {
  SyscallRequest request = Make(Sysno::kDup);
  request.arg0 = fd;
  return Syscall(request);
}

std::pair<int64_t, int64_t> VariantEnv::Pipe() {
  SyscallRequest request = Make(Sysno::kPipe);
  const int64_t packed = Syscall(request);
  if (packed < 0) {
    return {packed, packed};
  }
  return {packed & 0xffffffff, packed >> 32};
}

int64_t VariantEnv::Brk(int64_t increment) {
  SyscallRequest request = Make(Sysno::kBrk);
  request.arg0 = increment;
  return Syscall(request);
}

int64_t VariantEnv::Mmap(uint64_t length, int64_t prot) {
  SyscallRequest request = Make(Sysno::kMmap);
  request.arg0 = static_cast<int64_t>(length);
  request.arg1 = prot;
  return Syscall(request);
}

int64_t VariantEnv::Munmap(uint64_t addr, uint64_t length) {
  SyscallRequest request = Make(Sysno::kMunmap);
  request.local_addr = addr;
  request.logical_addr = diversity_->LogicalMapAddr(addr);
  request.arg1 = static_cast<int64_t>(length);
  return Syscall(request);
}

int64_t VariantEnv::Mprotect(uint64_t addr, uint64_t length, int64_t prot) {
  SyscallRequest request = Make(Sysno::kMprotect);
  request.local_addr = addr;
  request.logical_addr = diversity_->LogicalMapAddr(addr);
  request.arg1 = static_cast<int64_t>(length);
  request.arg2 = prot;
  return Syscall(request);
}

int64_t VariantEnv::GettimeofdayMicros() {
  SyscallRequest request = Make(Sysno::kGettimeofday);
  return Syscall(request);
}

int64_t VariantEnv::ClockGettimeNanos() {
  SyscallRequest request = Make(Sysno::kClockGettime);
  return Syscall(request);
}

int64_t VariantEnv::Rdtsc() {
  SyscallRequest request = Make(Sysno::kRdtsc);
  return Syscall(request);
}

int64_t VariantEnv::NanosleepNanos(int64_t nanos) {
  SyscallRequest request = Make(Sysno::kNanosleep);
  request.arg0 = nanos;
  return Syscall(request);
}

int64_t VariantEnv::Getrandom(std::span<uint8_t> out) {
  SyscallRequest request = Make(Sysno::kGetrandom);
  request.arg0 = static_cast<int64_t>(out.size());
  request.out_data = out;
  return Syscall(request);
}

int64_t VariantEnv::SchedYield() {
  SyscallRequest request = Make(Sysno::kSchedYield);
  return Syscall(request);
}

int64_t VariantEnv::Getpid() {
  SyscallRequest request = Make(Sysno::kGetpid);
  return Syscall(request);
}

int64_t VariantEnv::Gettid() {
  SyscallRequest request = Make(Sysno::kGettid);
  request.arg0 = tid_;
  return Syscall(request);
}

int64_t VariantEnv::Socket() {
  SyscallRequest request = Make(Sysno::kSocket);
  return Syscall(request);
}

int64_t VariantEnv::Bind(int64_t fd, uint16_t port) {
  SyscallRequest request = Make(Sysno::kBind);
  request.arg0 = fd;
  request.arg1 = port;
  return Syscall(request);
}

int64_t VariantEnv::Listen(int64_t fd, int64_t backlog) {
  SyscallRequest request = Make(Sysno::kListen);
  request.arg0 = fd;
  request.arg1 = backlog;
  return Syscall(request);
}

int64_t VariantEnv::Accept(int64_t fd) {
  SyscallRequest request = Make(Sysno::kAccept);
  request.arg0 = fd;
  return Syscall(request);
}

int64_t VariantEnv::Connect(int64_t fd, uint16_t port) {
  SyscallRequest request = Make(Sysno::kConnect);
  request.arg0 = fd;
  request.arg1 = port;
  return Syscall(request);
}

int64_t VariantEnv::Send(int64_t fd, std::span<const uint8_t> data) {
  SyscallRequest request = Make(Sysno::kSend);
  request.arg0 = fd;
  request.arg1 = static_cast<int64_t>(data.size());
  request.in_data = data;
  return Syscall(request);
}

int64_t VariantEnv::Send(int64_t fd, const std::string& data) {
  return Send(fd, std::span<const uint8_t>(reinterpret_cast<const uint8_t*>(data.data()),
                                           data.size()));
}

int64_t VariantEnv::Recv(int64_t fd, std::span<uint8_t> out) {
  SyscallRequest request = Make(Sysno::kRecv);
  request.arg0 = fd;
  request.arg1 = static_cast<int64_t>(out.size());
  request.out_data = out;
  return Syscall(request);
}

int64_t VariantEnv::Shutdown(int64_t fd) {
  SyscallRequest request = Make(Sysno::kShutdown);
  request.arg0 = fd;
  return Syscall(request);
}

int64_t VariantEnv::Poll(std::span<PollFd> fds, int64_t timeout_ms) {
  SyscallRequest request = Make(Sysno::kPoll);
  request.arg0 = static_cast<int64_t>(fds.size());
  request.arg1 = timeout_ms;
  // Payload: per fd, int32 descriptor + one event byte; revents come back
  // through the replicated out buffer, so every variant observes the
  // master's readiness snapshot.
  std::vector<uint8_t> payload(fds.size() * 5);
  for (size_t i = 0; i < fds.size(); ++i) {
    std::memcpy(payload.data() + i * 5, &fds[i].fd, sizeof(int32_t));
    payload[i * 5 + 4] = fds[i].events;
  }
  request.in_data = payload;
  std::vector<uint8_t> revents(fds.size(), 0);
  request.out_data = revents;
  const int64_t ready = Syscall(request);
  for (size_t i = 0; i < fds.size(); ++i) {
    fds[i].revents = revents[i];
  }
  return ready;
}

int64_t VariantEnv::FutexWait(const std::atomic<int32_t>* word, int32_t expected) {
  SyscallRequest request = Make(Sysno::kFutex);
  request.arg0 = FutexOp::kWait;
  request.arg1 = expected;
  // The futex word's identity must be consistent within one variant only
  // (waits and wakes both come from this variant's master threads), so the
  // raw pointer is a valid key. It is excluded from cross-variant
  // comparison (record.h).
  request.local_addr = reinterpret_cast<uint64_t>(word);
  request.futex_word = word;
  return Syscall(request);
}

int64_t VariantEnv::FutexWake(const std::atomic<int32_t>* word, int32_t count) {
  SyscallRequest request = Make(Sysno::kFutex);
  request.arg0 = FutexOp::kWake;
  request.arg1 = count;
  request.local_addr = reinterpret_cast<uint64_t>(word);
  return Syscall(request);
}

int64_t VariantEnv::Sigaction(int32_t sig, SignalHandler handler) {
  // Install the handler before the trap: the registration rendezvous is a
  // delivery point, and a signal already pending for this thread must find
  // the handler in place (all variants install before arriving, so delivery
  // stays symmetric).
  trap_->SetSignalHandler(variant_, sig, std::move(handler));
  SyscallRequest request = Make(Sysno::kSigaction);
  request.arg0 = sig;
  return Syscall(request);
}

int64_t VariantEnv::Kill(uint32_t tid, int32_t sig) {
  SyscallRequest request = Make(Sysno::kKill);
  request.arg0 = tid;
  request.arg1 = sig;
  return Syscall(request);
}

int64_t VariantEnv::MveeSelfAware() {
  SyscallRequest request = Make(Sysno::kMveeSelfAware);
  return Syscall(request);
}

ThreadHandle VariantEnv::Spawn(ThreadFn fn) {
  SyscallRequest request = Make(Sysno::kClone);
  const int64_t child_tid = Syscall(request);
  trap_->StartThread(variant_, static_cast<uint32_t>(child_tid), std::move(fn));
  return ThreadHandle{static_cast<uint32_t>(child_tid)};
}

void VariantEnv::Join(ThreadHandle handle) { trap_->JoinThread(variant_, handle.tid); }

}  // namespace mvee
