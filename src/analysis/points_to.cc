#include "mvee/analysis/points_to.h"

namespace mvee {

PointsToAnalysis::PointsToAnalysis(const MirModule& module) {
  reg_count_ = module.register_count;
  object_count_ = static_cast<int32_t>(module.objects.size());
  const int32_t node_count = reg_count_ + object_count_;
  parent_.resize(node_count);
  for (int32_t i = 0; i < node_count; ++i) {
    parent_[i] = i;
  }
  successor_.assign(node_count, -1);

  // One pass suffices: Steensgaard constraints are solved online by
  // unification (each operation maintains the invariant that every class has
  // at most one successor class).
  for (const auto& function : module.functions) {
    for (const auto& inst : function.instructions) {
      switch (inst.op) {
        case MirOp::kAddrOf:
        case MirOp::kAlloc: {
          // dst may point to object: unify succ(dst) with the object class.
          const int32_t object_node = reg_count_ + inst.object;
          const int32_t succ = SuccessorOf(inst.dst);
          Union(succ, object_node);
          break;
        }
        case MirOp::kMov:
        case MirOp::kGep: {
          // dst = src (field-insensitive): unify successors.
          UnifySuccessors(inst.dst, inst.src);
          break;
        }
        default:
          break;
      }
    }
  }
}

int32_t PointsToAnalysis::Find(int32_t node) const {
  while (parent_[node] != node) {
    parent_[node] = parent_[parent_[node]];
    node = parent_[node];
  }
  return node;
}

void PointsToAnalysis::Union(int32_t a, int32_t b) {
  const int32_t root_a = Find(a);
  const int32_t root_b = Find(b);
  if (root_a == root_b) {
    return;
  }
  parent_[root_b] = root_a;
  // Merge successors: if both classes had one, those must unify too
  // (recursive join — the heart of Steensgaard's near-linear algorithm).
  const int32_t succ_a = successor_[root_a];
  const int32_t succ_b = successor_[root_b];
  if (succ_b != -1) {
    if (succ_a == -1) {
      successor_[root_a] = succ_b;
    } else {
      Union(succ_a, succ_b);
    }
  }
}

int32_t PointsToAnalysis::SuccessorOf(int32_t node) {
  const int32_t root = Find(node);
  if (successor_[root] == -1) {
    // Create a fresh placeholder class: use the node itself as its own
    // successor anchor by allocating... we reuse the object-less case by
    // pointing at a synthetic class. To stay allocation-free we lazily use
    // the root's slot: a self-successor placeholder would corrupt alias
    // queries, so instead grow the universe with a synthetic node.
    parent_.push_back(static_cast<int32_t>(parent_.size()));
    successor_.push_back(-1);
    successor_[root] = static_cast<int32_t>(parent_.size() - 1);
  }
  return successor_[Find(node)];
}

void PointsToAnalysis::UnifySuccessors(int32_t a, int32_t b) {
  const int32_t succ_a = SuccessorOf(a);
  const int32_t succ_b = SuccessorOf(b);
  Union(succ_a, succ_b);
}

std::set<int32_t> PointsToAnalysis::PointsTo(int32_t reg) const {
  std::set<int32_t> result;
  if (reg < 0 || reg >= reg_count_) {
    return result;
  }
  const int32_t root = Find(reg);
  const int32_t succ = successor_[root];
  if (succ == -1) {
    return result;
  }
  const int32_t succ_root = Find(succ);
  for (int32_t obj = 0; obj < object_count_; ++obj) {
    if (Find(reg_count_ + obj) == succ_root) {
      result.insert(obj);
    }
  }
  return result;
}

bool PointsToAnalysis::MayAlias(int32_t reg_a, int32_t reg_b) const {
  if (reg_a < 0 || reg_b < 0) {
    return false;
  }
  const int32_t succ_a = successor_[Find(reg_a)];
  const int32_t succ_b = successor_[Find(reg_b)];
  if (succ_a == -1 || succ_b == -1) {
    return false;
  }
  return Find(succ_a) == Find(succ_b);
}

bool PointsToAnalysis::MayPointInto(int32_t reg, const std::set<int32_t>& objects) const {
  const std::set<int32_t> pts = PointsTo(reg);
  for (int32_t obj : pts) {
    if (objects.count(obj) != 0) {
      return true;
    }
  }
  return false;
}

}  // namespace mvee
