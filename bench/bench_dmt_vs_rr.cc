// DMT vs Record/Replay under software diversity (paper §2.1, §6).
//
// The paper rejects deterministic multithreading for MVEEs in two sentences:
// diversity perturbs the instruction counts DMT schedulers feed on, so each
// variant gets "a fixed, but different schedule which does not eliminate the
// possibility of benign divergence". This harness regenerates that argument
// as data. For a pool of random data-race-free programs we measure, per
// scheduling strategy and per diversity strength epsilon (the relative
// instruction-count perturbation; the paper's SoK reference [23] reports
// diversity transforms routinely shifting counts by 5-30%):
//
//   - divergence rate: fraction of (program, variant) pairs whose schedule
//     diverges from the base variant's — each one a spurious MVEE alarm;
//   - mean mismatch fraction: how much of the schedule fails to line up;
//   - virtual-makespan overhead vs the OS baseline: what the strategy costs
//     even when it works.
//
// Expected shape: Kendo and quantum DMT diverge at epsilon > 0 with rates
// that grow toward 1; barrier DMT never diverges on poll-free programs but
// deadlocks on every program with ad-hoc flag synchronization and pays the
// largest makespan; record/replay (the paper's choice, and what the sync
// agents implement) shows zero divergence everywhere at modest cost.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "mvee/dmt/program.h"
#include "mvee/dmt/replay.h"
#include "mvee/dmt/respec.h"
#include "mvee/dmt/schedule.h"
#include "mvee/dmt/scheduler.h"

namespace {

using namespace mvee::dmt;

struct StrategyResult {
  int pairs = 0;
  int diverged = 0;
  int deadlocked = 0;
  double mismatch_sum = 0.0;
  double makespan_ratio_sum = 0.0;
  int makespan_samples = 0;
};

constexpr int kPrograms = 20;
constexpr int kVariantsPerProgram = 3;

ProgramSpec SpecFor(bool with_poll_loops) {
  ProgramSpec spec;
  spec.threads = 4;
  spec.locks = 4;
  spec.sections_per_thread = 60;
  spec.compute_cost_mean = 200;
  spec.critical_cost_mean = 40;
  spec.syscall_probability = 0.4;
  spec.flag_pairs = with_poll_loops ? 2 : 0;
  return spec;
}

// Runs one strategy over the program pool at one epsilon.
StrategyResult Evaluate(const char* strategy, double epsilon, bool with_poll_loops) {
  StrategyResult result;
  for (int p = 0; p < kPrograms; ++p) {
    const uint64_t seed = 1000 + static_cast<uint64_t>(p);
    const Program program = GenerateProgram(SpecFor(with_poll_loops), seed);

    std::unique_ptr<Scheduler> scheduler;
    const std::string name = strategy;
    if (name == "kendo") {
      scheduler = std::make_unique<KendoScheduler>();
    } else if (name == "quantum") {
      scheduler = std::make_unique<QuantumScheduler>();
    } else if (name == "barrier") {
      scheduler = std::make_unique<BarrierScheduler>();
    }

    const Schedule os_base = OsScheduler(OsConfig{.seed = seed}).Run(program);

    Schedule base;
    if (scheduler) {
      base = scheduler->Run(program);
    } else {
      base = RecordMaster(program, seed);  // R+R: the master recording.
    }
    if (!base.completed) {
      // Strategy cannot run the base program at all (barrier + poll loops):
      // every variant pair is a loss.
      result.pairs += kVariantsPerProgram;
      result.diverged += kVariantsPerProgram;
      result.deadlocked += kVariantsPerProgram;
      result.mismatch_sum += kVariantsPerProgram;
      continue;
    }
    if (os_base.completed && os_base.makespan > 0) {
      result.makespan_ratio_sum += static_cast<double>(base.makespan) /
                                   static_cast<double>(os_base.makespan);
      ++result.makespan_samples;
    }

    for (int v = 1; v <= kVariantsPerProgram; ++v) {
      const Program variant = PerturbCosts(program, epsilon, seed * 31 + v);
      Schedule other;
      if (scheduler) {
        other = scheduler->Run(variant);
      } else {
        ReplayScheduler replayer(base, program.lock_count, program.flag_count,
                                 seed * 131 + v);
        other = replayer.Run(variant);
      }
      ++result.pairs;
      if (!other.completed) {
        ++result.diverged;
        ++result.deadlocked;
        result.mismatch_sum += 1.0;
        continue;
      }
      const auto divergence =
          CompareSchedules(base, other, program.thread_count(), program.lock_count);
      result.diverged += divergence.diverged ? 1 : 0;
      result.mismatch_sum += divergence.mismatch_fraction;
    }
  }
  return result;
}

void PrintTable(bool with_poll_loops) {
  std::printf("\n-- %s programs (%d programs x %d diversified variants each) --\n",
              with_poll_loops ? "ad-hoc-synchronization (poll-loop)" : "lock-only",
              kPrograms, kVariantsPerProgram);
  std::printf("%-10s %-8s %12s %12s %12s %14s\n", "strategy", "epsilon", "diverge-rate",
              "mismatch", "deadlocks", "makespan/os");
  for (const char* strategy : {"kendo", "quantum", "barrier", "rr-replay"}) {
    for (double epsilon : {0.0, 0.05, 0.15, 0.30}) {
      const StrategyResult r = Evaluate(strategy, epsilon, with_poll_loops);
      std::printf("%-10s %-8.2f %11.0f%% %12.3f %9d/%-3d %13.2fx\n", strategy, epsilon,
                  100.0 * r.diverged / r.pairs, r.mismatch_sum / r.pairs, r.deadlocked,
                  r.pairs,
                  r.makespan_samples > 0 ? r.makespan_ratio_sum / r.makespan_samples : 0.0);
      std::fflush(stdout);
    }
  }
}

}  // namespace

namespace {

// §6's Respec objection, quantified: epoch rollback rates under logical
// (diversity-aware) vs concrete (register-level) state comparison.
void PrintRespecTable() {
  std::printf("\n-- Respec-style epoch speculation (§6): rollbacks per 20 programs --\n");
  std::printf("%-34s %-10s %10s %12s\n", "epoch check", "hints", "rollbacks",
              "undecidable");
  struct Row {
    const char* label;
    EpochDigestModel model;
    double fidelity;
    bool diversified;
  };
  const Row rows[] = {
      {"logical (idealized)", EpochDigestModel::kLogical, 1.0, true},
      {"logical, noisy hints", EpochDigestModel::kLogical, 0.5, true},
      {"concrete, identical replicas", EpochDigestModel::kConcrete, 1.0, false},
      {"concrete, diversified variants", EpochDigestModel::kConcrete, 1.0, true},
  };
  for (const Row& row : rows) {
    uint32_t rollbacks = 0;
    uint32_t undecidable = 0;
    uint32_t epochs = 0;
    for (int p = 0; p < kPrograms; ++p) {
      const uint64_t seed = 3000 + static_cast<uint64_t>(p);
      const Program program = GenerateProgram(SpecFor(false), seed);
      const Schedule master = RecordMaster(program, seed);
      RespecConfig config;
      config.digest_model = row.model;
      config.hint_fidelity = row.fidelity;
      config.scheduler_seed = seed * 7;
      config.layout_seed = row.diversified ? seed + 1 : seed;
      const RespecReport report = RunRespecSlave(program, master, seed, config);
      rollbacks += report.rollbacks;
      epochs += report.epochs;
      undecidable += report.schedule.completed ? 0 : 1;
    }
    std::printf("%-34s %-10.2f %6u/%-4u %9u/%-3d\n", row.label, row.fidelity, rollbacks,
                epochs, undecidable, kPrograms);
    std::fflush(stdout);
  }
  std::printf("(concrete + diversified: the epoch check fails on the FIRST epoch of\n"
              " every program — register-level state comparison cannot distinguish\n"
              " divergence from diversity, which is why the paper rules Respec out.)\n");
}

}  // namespace

int main() {
  std::printf("=============================================================\n");
  std::printf("DMT vs Record/Replay under diversity (paper argument, §2.1/§6)\n");
  std::printf("epsilon = relative instruction-count perturbation from diversity\n");
  std::printf("=============================================================\n");
  PrintTable(/*with_poll_loops=*/false);
  PrintTable(/*with_poll_loops=*/true);
  PrintRespecTable();
  std::printf(
      "\nReading: DMT schedulers are deterministic per variant but their\n"
      "schedules are functions of instruction counts, so any epsilon > 0\n"
      "diverges; barrier DMT resists epsilon but deadlocks on ad-hoc sync\n"
      "and pays the largest serialization cost; record/replay (the paper's\n"
      "design) never diverges.\n");
  return 0;
}
