#include "mvee/dmt/schedule.h"

#include <algorithm>

namespace mvee::dmt {

std::vector<std::vector<uint32_t>> PerVariableOrders(const Schedule& schedule,
                                                     uint32_t lock_count) {
  std::vector<std::vector<uint32_t>> orders(lock_count);
  for (const auto& event : schedule.sync_order) {
    if (event.kind == OpKind::kLock && event.var < lock_count) {
      orders[event.var].push_back(event.tid);
    }
  }
  return orders;
}

ScheduleDivergence CompareSchedules(const Schedule& a, const Schedule& b,
                                    uint32_t thread_count, uint32_t lock_count) {
  ScheduleDivergence result;

  // A variant that deadlocked under its scheduler is maximally divergent:
  // the MVEE's rendezvous would time out waiting for its next call.
  if (!a.completed || !b.completed) {
    result.diverged = true;
    result.mismatch_fraction = 1.0;
    return result;
  }

  // Monitor's view: per-thread syscall digest streams (each thread-set is
  // compared in lockstep, as ReMon does per-thread-set).
  std::vector<std::vector<uint64_t>> streams_a(thread_count);
  std::vector<std::vector<uint64_t>> streams_b(thread_count);
  for (const auto& event : a.syscall_order) {
    streams_a[event.tid].push_back(event.digest);
  }
  for (const auto& event : b.syscall_order) {
    streams_b[event.tid].push_back(event.digest);
  }
  for (uint32_t t = 0; t < thread_count && !result.diverged; ++t) {
    const size_t n = std::min(streams_a[t].size(), streams_b[t].size());
    for (size_t i = 0; i < n; ++i) {
      if (streams_a[t][i] != streams_b[t][i]) {
        result.diverged = true;
        result.first_tid = t;
        result.first_index = i;
        break;
      }
    }
    if (!result.diverged && streams_a[t].size() != streams_b[t].size()) {
      result.diverged = true;
      result.first_tid = t;
      result.first_index = n;
    }
  }

  // Agents' view: per-variable acquisition orders. The mismatch fraction
  // quantifies how much of the schedule fails to line up.
  const auto orders_a = PerVariableOrders(a, lock_count);
  const auto orders_b = PerVariableOrders(b, lock_count);
  size_t total = 0;
  size_t mismatched = 0;
  for (uint32_t v = 0; v < lock_count; ++v) {
    const size_t n = std::max(orders_a[v].size(), orders_b[v].size());
    const size_t common = std::min(orders_a[v].size(), orders_b[v].size());
    total += n;
    mismatched += n - common;
    for (size_t i = 0; i < common; ++i) {
      if (orders_a[v][i] != orders_b[v][i]) {
        ++mismatched;
      }
    }
  }
  result.mismatch_fraction = total == 0 ? 0.0 : static_cast<double>(mismatched) /
                                                    static_cast<double>(total);
  if (mismatched > 0) {
    result.diverged = true;
  }
  return result;
}

}  // namespace mvee::dmt
