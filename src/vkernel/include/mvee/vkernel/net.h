// Virtual TCP-lite network.
//
// The nginx-style use case (paper §5.5) needs a server that accepts
// connections and a wrk-style client generating load. The virtual network
// provides per-port listeners with accept queues and bidirectional byte
// stream connections. Only the master variant executes network I/O; results
// are replicated (accept/connect/send/recv are kReplicated syscalls).

#ifndef MVEE_VKERNEL_NET_H_
#define MVEE_VKERNEL_NET_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace mvee {

// One direction of a connection: a bounded blocking byte stream.
class ByteStream {
 public:
  explicit ByteStream(size_t capacity = 262144) : capacity_(capacity) {}

  // Blocks until data or close. Returns bytes read; 0 on orderly shutdown.
  int64_t Read(uint8_t* out, uint64_t size);
  // Blocks while full. Returns size, or -ECONNRESET if the peer closed.
  int64_t Write(const uint8_t* data, uint64_t size);
  void Close();
  bool closed() const;
  // Readiness queries for sys_poll: a Read would not block / a Write of at
  // least one byte would not block.
  bool Readable() const;
  bool Writable() const;

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable readable_;
  std::condition_variable writable_;
  std::deque<uint8_t> buffer_;
  bool closed_ = false;
};

// A full-duplex connection: the accept side reads what the connect side
// writes and vice versa.
class VConnection {
 public:
  VConnection()
      : client_to_server_(std::make_shared<ByteStream>()),
        server_to_client_(std::make_shared<ByteStream>()) {}

  // Server-side (accepted socket) operations.
  int64_t ServerRead(uint8_t* out, uint64_t size) { return client_to_server_->Read(out, size); }
  int64_t ServerWrite(const uint8_t* data, uint64_t size) {
    return server_to_client_->Write(data, size);
  }
  // Client-side operations.
  int64_t ClientRead(uint8_t* out, uint64_t size) { return server_to_client_->Read(out, size); }
  int64_t ClientWrite(const uint8_t* data, uint64_t size) {
    return client_to_server_->Write(data, size);
  }

  bool ServerReadable() const { return client_to_server_->Readable(); }
  bool ServerWritable() const { return server_to_client_->Writable(); }
  bool ClientReadable() const { return server_to_client_->Readable(); }
  bool ClientWritable() const { return client_to_server_->Writable(); }

  void CloseServerSide() { server_to_client_->Close(); }
  void CloseClientSide() { client_to_server_->Close(); }
  void CloseBoth() {
    client_to_server_->Close();
    server_to_client_->Close();
  }

 private:
  std::shared_ptr<ByteStream> client_to_server_;
  std::shared_ptr<ByteStream> server_to_client_;
};

// Listening socket: pending-connection queue.
class VListener {
 public:
  explicit VListener(int backlog) : backlog_(backlog) {}

  // Client side: enqueues a new connection; fails with -ECONNREFUSED if the
  // listener is closed or the backlog is full.
  int64_t PushConnection(std::shared_ptr<VConnection> conn);
  // Server side: blocks until a connection or close. nullptr on close.
  std::shared_ptr<VConnection> Accept();
  // sys_poll readiness: an Accept would not block.
  bool HasPending() const;
  void Close();

 private:
  const int backlog_;
  mutable std::mutex mutex_;
  std::condition_variable pending_cv_;
  std::deque<std::shared_ptr<VConnection>> pending_;
  bool closed_ = false;
};

// Port -> listener registry shared by the whole machine.
class VirtualNetwork {
 public:
  // Returns 0 or -EADDRINUSE.
  int64_t Listen(uint16_t port, int backlog, std::shared_ptr<VListener>* out);
  // Returns a connected VConnection or nullptr (-ECONNREFUSED semantics).
  std::shared_ptr<VConnection> Connect(uint16_t port);
  void CloseListener(uint16_t port);
  // Closes every listener and every live connection (MVEE shutdown path).
  void CloseAll();

 private:
  std::mutex mutex_;
  std::map<uint16_t, std::shared_ptr<VListener>> listeners_;
  std::vector<std::weak_ptr<VConnection>> connections_;
};

}  // namespace mvee

#endif  // MVEE_VKERNEL_NET_H_
