#include "mvee/agents/partial_order.h"

#include <chrono>
#include <string>

#include "mvee/util/spin.h"
#include "mvee/util/variant_killed.h"

namespace mvee {

PartialOrderRuntime::PartialOrderRuntime(const AgentConfig& config, AgentControl control)
    : config_(config), control_(std::move(control)), ring_(config.buffer_capacity) {
  ring_.EnableCursorCaching(config_.cached_ring_cursors);
  for (uint32_t v = 1; v < config_.num_variants; ++v) {
    auto slave = std::make_unique<SlaveState>();
    slave->consumed = std::vector<std::atomic<uint8_t>>(config_.buffer_capacity);
    slave->next_index_by_tid = std::vector<std::atomic<uint64_t>>(config_.max_threads);
    slave->consumer_id = ring_.RegisterConsumer();
    slaves_.push_back(std::move(slave));
  }
}

std::unique_ptr<SyncAgent> PartialOrderRuntime::CreateAgent(uint32_t variant_index) {
  if (variant_index == 0) {
    return std::make_unique<PartialOrderAgent>(this, AgentRole::kMaster, nullptr);
  }
  return std::make_unique<PartialOrderAgent>(this, AgentRole::kSlave,
                                             slaves_[variant_index - 1].get());
}

PartialOrderAgent::PartialOrderAgent(PartialOrderRuntime* runtime, AgentRole role,
                                     PartialOrderRuntime::SlaveState* slave)
    : runtime_(runtime),
      role_(role),
      slave_(slave),
      stats_variant_(slave == nullptr ? 0 : static_cast<uint32_t>(slave->consumer_id) + 1) {}

void PartialOrderAgent::BeforeSyncOp(uint32_t tid, const void* addr) {
  (void)addr;  // The key is recorded in AfterSyncOp (master) / read from the buffer (slave).
  if (runtime_->control_.aborted() && AlreadyUnwinding()) {
    return;  // Teardown: no second throw from destructor-driven sync ops.
  }
  if (role_ == AgentRole::kMaster) {
    SpinWait waiter;
    while (runtime_->master_lock_.test_and_set(std::memory_order_acquire)) {
      if (runtime_->control_.aborted()) {
        throw VariantKilled{};
      }
      waiter.Pause();
    }
    return;
  }

  // Slave replay. Step 1: locate this thread's next recorded entry by
  // scanning forward from where the previous scan stopped (each global entry
  // is scanned at most once per thread, so the scan is amortized O(1)).
  const uint64_t mask = runtime_->config_.buffer_capacity - 1;
  auto& ring = runtime_->ring_;
  const size_t consumer = slave_->consumer_id;
  DeadlineGate deadline(runtime_->config_.replay_deadline);
  SpinWait waiter;
  bool stalled = false;

  auto check_deadline = [&](const char* phase) {
    if (runtime_->control_.aborted()) {
      throw VariantKilled{};
    }
    if (deadline.Expired(waiter)) {
      if (runtime_->control_.on_stall) {
        runtime_->control_.on_stall(std::string("partial-order replay deadline (") + phase +
                                    ", tid " + std::to_string(tid) + ")");
      }
      throw VariantKilled{};
    }
  };

  // The scan may look at most `po_window` entries past the retire base (the
  // paper's lookahead window): a thread whose next entry lies beyond it
  // stalls until other threads consume the in-window entries. Progress is
  // guaranteed for any window >= 1 because the entry at `base` is always the
  // owning thread's next entry. Small windows bound scan cost and memory
  // freshness at the price of TO-like stalls (ablation 5 sweeps this).
  const uint64_t window = runtime_->config_.po_window;
  uint64_t index = slave_->next_index_by_tid[tid].load(std::memory_order_relaxed);
  PartialOrderRuntime::Entry mine;
  for (;;) {
    const uint64_t base_now = slave_->base.load(std::memory_order_acquire);
    if (index < base_now) {
      // Everything below base is consumed — including all of this thread's
      // earlier entries — so its next entry is at or above base. Skipping
      // ahead is therefore lossless, and it keeps the scan out of retired
      // slots the producer may already be reusing.
      index = base_now;
    }
    if (index >= base_now + window) {
      if (!stalled) {
        stalled = true;
        runtime_->stats_.shard(stats_variant_, tid).replay_stalls.fetch_add(1, std::memory_order_relaxed);
      }
      check_deadline("window");
      waiter.Pause();
      continue;
    }
    PartialOrderRuntime::Entry entry;
    if (!ring.TryRead(consumer, index, &entry)) {
      if (!stalled) {
        stalled = true;
        runtime_->stats_.shard(stats_variant_, tid).replay_stalls.fetch_add(1, std::memory_order_relaxed);
      }
      check_deadline("scan");
      waiter.Pause();
      continue;
    }
    if (entry.tid == tid) {
      mine = entry;
      break;
    }
    ++index;
  }
  pending_index_[tid] = index;

  // Step 2: wait until every unconsumed earlier entry with the same key has
  // been replayed. This is the window scan the paper describes; it preserves
  // the recorded order between dependent ops only.
  waiter.Reset();
  for (;;) {
    bool blocked = false;
    // base only moves forward; a stale (smaller) value is safe, it only
    // lengthens the scan.
    const uint64_t base = slave_->base.load(std::memory_order_acquire);
    for (uint64_t j = base; j < index; ++j) {
      if (slave_->consumed[j & mask].load(std::memory_order_acquire) != 0) {
        continue;
      }
      PartialOrderRuntime::Entry other;
      if (!ring.TryRead(consumer, j, &other)) {
        continue;  // Retired concurrently.
      }
      if (other.key == mine.key) {
        blocked = true;
        break;
      }
    }
    if (!blocked) {
      return;
    }
    if (!stalled) {
      stalled = true;
      runtime_->stats_.shard(stats_variant_, tid).replay_stalls.fetch_add(1, std::memory_order_relaxed);
    }
    check_deadline("dependence");
    waiter.Pause();
  }
}

void PartialOrderAgent::AfterSyncOp(uint32_t tid, const void* addr) {
  if (runtime_->control_.aborted() && AlreadyUnwinding()) {
    return;
  }
  if (role_ == AgentRole::kMaster) {
    PartialOrderRuntime::Entry entry;
    entry.tid = tid;
    entry.key = reinterpret_cast<uint64_t>(addr);
    if (!runtime_->ring_.TryPush(entry)) {
      runtime_->stats_.shard(stats_variant_, tid).record_stalls.fetch_add(1, std::memory_order_relaxed);
      SpinWait waiter;
      while (!runtime_->ring_.TryPush(entry)) {
        if (runtime_->control_.aborted()) {
          runtime_->master_lock_.clear(std::memory_order_release);
          throw VariantKilled{};
        }
        waiter.Pause();
      }
    }
    runtime_->stats_.shard(stats_variant_, tid).ops_recorded.fetch_add(1, std::memory_order_relaxed);
    runtime_->master_lock_.clear(std::memory_order_release);
    return;
  }

  const uint64_t mask = runtime_->config_.buffer_capacity - 1;
  const uint64_t index = pending_index_[tid];
  slave_->consumed[index & mask].store(1, std::memory_order_release);
  slave_->next_index_by_tid[tid].store(index + 1, std::memory_order_relaxed);
  runtime_->stats_.shard(stats_variant_, tid).ops_replayed.fetch_add(1, std::memory_order_relaxed);

  // Retire a consumed prefix so the producer can reuse the slots.
  std::lock_guard<std::mutex> lock(slave_->base_mutex);
  auto& ring = runtime_->ring_;
  uint64_t base = slave_->base.load(std::memory_order_relaxed);
  while (base < ring.WriteCursor() &&
         slave_->consumed[base & mask].load(std::memory_order_acquire) != 0) {
    slave_->consumed[base & mask].store(0, std::memory_order_relaxed);
    ring.Advance(slave_->consumer_id);
    slave_->base.store(++base, std::memory_order_release);
  }
}

}  // namespace mvee
