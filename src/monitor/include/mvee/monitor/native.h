// NativeRunner: executes a variant program outside the MVEE.
//
// This is the "native execution" baseline of the paper's evaluation (§5.1:
// "We measured the native run time by running the non-instrumented binaries
// outside our MVEE"). Syscalls go straight to the virtual kernel — no
// rendezvous, no comparison, no ordering, no replication — and sync ops hit
// the NullAgent.

#ifndef MVEE_MONITOR_NATIVE_H_
#define MVEE_MONITOR_NATIVE_H_

#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "mvee/agents/sync_agent.h"
#include "mvee/syscall/record.h"
#include "mvee/util/status.h"
#include "mvee/variant/env.h"
#include "mvee/vkernel/vkernel.h"

namespace mvee {

class NativeRunner : public TrapInterface {
 public:
  explicit NativeRunner(VirtualKernel* external_kernel = nullptr, uint64_t seed = 0x5eedULL);
  ~NativeRunner() override;

  // Runs `program` as a single uninstrumented process. Always returns OK
  // unless the program itself misbehaves.
  Status Run(Program program);

  VirtualKernel& kernel() { return *kernel_; }
  SyscallCounters counters() const { return counters_.Snapshot(); }

  // Installs a custom agent for the program's sync ops (default: NullAgent).
  // Used by the Table 2 harness to count native sync-op rates; must outlive
  // Run().
  void set_agent(SyncAgent* agent) { agent_ = agent; }

  // TrapInterface:
  int64_t Trap(uint32_t variant, uint32_t tid, SyscallRequest& request) override;
  void StartThread(uint32_t variant, uint32_t child_tid, ThreadFn fn) override;
  void JoinThread(uint32_t variant, uint32_t tid) override;
  void SetSignalHandler(uint32_t variant, int32_t sig, SignalHandler handler) override;

 private:
  void RunThread(uint32_t tid, const ThreadFn& fn);

  std::unique_ptr<VirtualKernel> owned_kernel_;
  VirtualKernel* kernel_;
  std::unique_ptr<DiversityMap> diversity_;
  std::unique_ptr<ProcessState> process_;
  std::atomic<uint32_t> next_tid_{1};
  std::mutex threads_mutex_;
  std::map<uint32_t, std::thread> threads_;
  // Relaxed atomics: the native baseline must not pay a counter mutex the
  // MVEE no longer pays either (counters are sharded per thread set there).
  AtomicSyscallCounters counters_;
  SyncAgent* agent_ = nullptr;  // nullptr => NullAgent.
  // Signal state (handlers are process-wide, signals target logical tids).
  std::mutex signals_mutex_;
  std::map<int32_t, SignalHandler> signal_handlers_;
  std::map<uint32_t, std::vector<int32_t>> pending_signals_;
};

}  // namespace mvee

#endif  // MVEE_MONITOR_NATIVE_H_
