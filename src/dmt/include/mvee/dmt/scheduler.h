// Deterministic multithreading schedulers (paper §2.1 and §6 related work).
//
// Each scheduler is a discrete-event simulator that executes an abstract
// Program (program.h) and emits the Schedule it produced. All of them are
// deterministic functions of (program, config) — run twice, get the same
// schedule — which is the DMT guarantee. The study's point is *which inputs*
// the schedule is a function of:
//
//   KendoScheduler    — weak determinism via deterministic logical clocks
//                       fed by retired-instruction counts (Kendo [32],
//                       RFDet [29]). Schedule depends on compute costs =>
//                       diversity-sensitive.
//   QuantumScheduler  — serial token round-robin with instruction-count
//                       quanta (CoreDet [9], DMP [15], dOS-style). Schedule
//                       depends on where quantum boundaries land =>
//                       diversity-sensitive.
//   BarrierScheduler  — global barrier at sync ops (DThreads [28], Grace
//                       [11]-style). Schedule depends only on each thread's
//                       sync-op *sequence* => diversity-insensitive, but
//                       incompatible with ad-hoc poll loops (threads that
//                       never execute a sync op never reach the barrier, §6)
//                       and pays a big makespan cost on imbalanced phases.
//   OsScheduler       — NOT deterministic: a seeded random interleaver that
//                       models the native OS scheduler. Used as the source
//                       of master schedules for record/replay (replay.h) and
//                       to measure natural run-to-run nondeterminism.

#ifndef MVEE_DMT_SCHEDULER_H_
#define MVEE_DMT_SCHEDULER_H_

#include <cstdint>
#include <memory>

#include "mvee/dmt/program.h"
#include "mvee/dmt/schedule.h"

namespace mvee::dmt {

// Fixed instruction costs schedulers charge for non-compute ops.
struct OpCosts {
  uint64_t sync = 4;      // Lock/unlock/flag ops.
  uint64_t syscall = 50;  // Kernel round trip.
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;
  virtual Schedule Run(const Program& program) = 0;
  virtual const char* name() const = 0;
};

// --- Kendo-style deterministic logical clocks ---

struct KendoConfig {
  // Clock bump charged while waiting for a contended lock (models the
  // det_mutex_lock retry loop's instruction cost).
  uint64_t wait_bump = 16;
  OpCosts costs;
};

class KendoScheduler final : public Scheduler {
 public:
  explicit KendoScheduler(const KendoConfig& config = {}) : config_(config) {}
  Schedule Run(const Program& program) override;
  const char* name() const override { return "kendo"; }

 private:
  KendoConfig config_;
};

// --- CoreDet/DMP-style serial token with instruction quanta ---

struct QuantumConfig {
  uint64_t quantum = 1000;  // Instructions per token turn.
  OpCosts costs;
};

class QuantumScheduler final : public Scheduler {
 public:
  explicit QuantumScheduler(const QuantumConfig& config = {}) : config_(config) {}
  Schedule Run(const Program& program) override;
  const char* name() const override { return "quantum"; }

 private:
  QuantumConfig config_;
};

// --- DThreads-style global barrier at sync ops ---

struct BarrierConfig {
  // A thread spinning in kWaitFlag for this many rounds while every other
  // thread sits at the barrier is reported as the poll-loop deadlock of §6.
  uint32_t stall_rounds_limit = 3;
  OpCosts costs;
};

class BarrierScheduler final : public Scheduler {
 public:
  explicit BarrierScheduler(const BarrierConfig& config = {}) : config_(config) {}
  Schedule Run(const Program& program) override;
  const char* name() const override { return "barrier"; }

 private:
  BarrierConfig config_;
};

// --- Seeded random interleaver (the "native OS") ---

struct OsConfig {
  uint64_t seed = 1;
  // Maximum compute instructions executed per scheduling decision; smaller
  // slices yield more interleavings.
  uint64_t slice = 128;
  OpCosts costs;
};

class OsScheduler final : public Scheduler {
 public:
  explicit OsScheduler(const OsConfig& config = {}) : config_(config) {}
  Schedule Run(const Program& program) override;
  const char* name() const override { return "os-random"; }

 private:
  OsConfig config_;
};

}  // namespace mvee::dmt

#endif  // MVEE_DMT_SCHEDULER_H_
