// Randomized end-to-end stress: seeded random multithreaded programs (random
// lock graphs, mixed primitive types, interleaved file I/O and plain
// syscalls) run under the full MVEE for every agent kind and variant count.
// The MVEE must (a) report no divergence, (b) produce a shared-state digest
// equal to a native run's, and (c) balance recorded vs replayed sync ops.
// This is the §5.1 correctness claim exercised on programs nobody hand-wrote.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "mvee/monitor/mvee.h"
#include "mvee/monitor/native.h"
#include "mvee/sync/primitives.h"
#include "mvee/util/hash.h"
#include "mvee/util/rng.h"

namespace mvee {
namespace {

struct FuzzSpec {
  uint64_t seed = 1;
  uint32_t threads = 4;
  uint32_t mutexes = 3;
  uint32_t spinlocks = 2;
  int ops_per_thread = 120;
  double io_probability = 0.05;
  double syscall_probability = 0.1;
  double semaphore_probability = 0.1;
};

// Builds a random-but-deterministic variant program from `spec`. All cross-
// thread state lives behind instrumented primitives, so any correct agent
// must reproduce the same final digest in every variant.
Program MakeFuzzProgram(const FuzzSpec& spec) {
  return [spec](VariantEnv& env) {
    struct Shared {
      explicit Shared(const FuzzSpec& s)
          : mutexes(s.mutexes), spinlocks(s.spinlocks), tickets(0), sem(2) {}
      std::vector<Mutex> mutexes;
      std::vector<SpinLock> spinlocks;
      InstrumentedAtomic<int32_t> tickets;
      Semaphore sem;
      // One history per lock: the digest input. Guarded by that lock.
      std::vector<std::vector<int32_t>> histories;
    };
    auto shared = std::make_shared<Shared>(spec);
    shared->histories.resize(spec.mutexes + spec.spinlocks);

    std::vector<ThreadHandle> workers;
    for (uint32_t t = 0; t < spec.threads; ++t) {
      workers.push_back(env.Spawn([shared, spec, t](VariantEnv& wenv) {
        Rng rng(SplitMix64(spec.seed * 1000 + t));
        for (int i = 0; i < spec.ops_per_thread; ++i) {
          const uint32_t pick =
              static_cast<uint32_t>(rng.NextBelow(spec.mutexes + spec.spinlocks));
          const int32_t stamp =
              static_cast<int32_t>(t * 100000 + static_cast<uint32_t>(i));
          if (pick < spec.mutexes) {
            LockGuard<Mutex> guard(shared->mutexes[pick]);
            shared->histories[pick].push_back(stamp);
          } else {
            LockGuard<SpinLock> guard(shared->spinlocks[pick - spec.mutexes]);
            shared->histories[pick].push_back(stamp);
          }
          if (rng.NextBool(spec.semaphore_probability)) {
            shared->sem.Acquire();
            shared->tickets.FetchAdd(1);
            shared->sem.Release();
          }
          if (rng.NextBool(spec.syscall_probability)) {
            wenv.Gettid();
          }
          if (rng.NextBool(spec.io_probability)) {
            const std::string path = "fuzz/t" + std::to_string(t);
            const int64_t fd =
                wenv.Open(path, VOpenFlags::kWrite | VOpenFlags::kCreate);
            wenv.Write(fd, std::to_string(stamp) + "\n");
            wenv.Close(fd);
          }
        }
      }));
    }
    for (ThreadHandle& worker : workers) {
      env.Join(worker);
    }

    // Digest the per-lock histories: equal digests across variants mean the
    // agents reproduced every acquisition order exactly.
    FnvDigest digest;
    for (const auto& history : shared->histories) {
      for (int32_t stamp : history) {
        digest.UpdateValue(stamp);
      }
      digest.UpdateValue(history.size());
    }
    digest.UpdateValue(shared->tickets.Load());
    const int64_t fd =
        env.Open("result/fuzz", VOpenFlags::kWrite | VOpenFlags::kCreate |
                                    VOpenFlags::kTruncate);
    env.Write(fd, std::to_string(digest.Finish()));
    env.Close(fd);
  };
}

std::string ResultOf(VirtualKernel& kernel, const std::string& name) {
  auto file = kernel.vfs().Open(name, false);
  if (file == nullptr) {
    return "";
  }
  const auto bytes = file->Contents();
  return std::string(bytes.begin(), bytes.end());
}

struct StressParam {
  AgentKind agent;
  uint32_t variants;
  uint64_t seed;
};

std::string StressName(const ::testing::TestParamInfo<StressParam>& info) {
  std::string name = AgentKindName(info.param.agent);
  for (char& c : name) {
    if (c == '-') {
      c = '_';
    }
  }
  return name + "_v" + std::to_string(info.param.variants) + "_s" +
         std::to_string(info.param.seed);
}

class MveeStressTest : public ::testing::TestWithParam<StressParam> {};

TEST_P(MveeStressTest, RandomProgramRunsWithoutDivergence) {
  const StressParam& param = GetParam();
  FuzzSpec spec;
  spec.seed = param.seed;

  // Reference digest from a native (agent-free) run. Note the digest depends
  // on scheduling, so the native value is only used as a *format* sanity
  // check, not an equality target — the MVEE's own cross-variant equality is
  // the property under test.
  std::string native_digest;
  {
    NativeRunner runner;
    ASSERT_TRUE(runner.Run(MakeFuzzProgram(spec)).ok());
    native_digest = ResultOf(runner.kernel(), "result/fuzz");
  }
  ASSERT_FALSE(native_digest.empty());

  MveeOptions options;
  options.num_variants = param.variants;
  options.agent = param.agent;
  options.enable_aslr = true;
  options.seed = param.seed;
  options.rendezvous_timeout = std::chrono::milliseconds(60000);
  options.agent_config.replay_deadline = std::chrono::milliseconds(60000);
  Mvee mvee(options);
  const Status status = mvee.Run(MakeFuzzProgram(spec));
  ASSERT_TRUE(status.ok()) << status.ToString();

  // Lockstep comparison already proved all variants wrote the same digest;
  // double-check the file exists and the sync-op books balance.
  EXPECT_FALSE(ResultOf(mvee.kernel(), "result/fuzz").empty());
  const MveeReport& report = mvee.report();
  EXPECT_GT(report.sync_ops_recorded, 0u);
  EXPECT_EQ(report.sync_ops_replayed, (param.variants - 1) * report.sync_ops_recorded);
}

INSTANTIATE_TEST_SUITE_P(
    Fuzz, MveeStressTest,
    ::testing::Values(
        // Every agent at 2 variants, three seeds each.
        StressParam{AgentKind::kTotalOrder, 2, 11}, StressParam{AgentKind::kTotalOrder, 2, 12},
        StressParam{AgentKind::kPartialOrder, 2, 11},
        StressParam{AgentKind::kPartialOrder, 2, 12},
        StressParam{AgentKind::kWallOfClocks, 2, 11},
        StressParam{AgentKind::kWallOfClocks, 2, 12},
        StressParam{AgentKind::kWallOfClocks, 2, 13},
        StressParam{AgentKind::kPerVariableOrder, 2, 11},
        StressParam{AgentKind::kPerVariableOrder, 2, 12},
        // Higher variant counts on the two fastest agents.
        StressParam{AgentKind::kWallOfClocks, 3, 21},
        StressParam{AgentKind::kWallOfClocks, 4, 22},
        StressParam{AgentKind::kPerVariableOrder, 3, 21}),
    StressName);

// The same fuzz program stays correct when the workload leans on a single
// contended lock (worst case for WoC collisions and PO window scans).
TEST(MveeStressTest, SingleHotLock) {
  FuzzSpec spec;
  spec.seed = 31;
  spec.mutexes = 1;
  spec.spinlocks = 0;
  spec.threads = 4;
  spec.ops_per_thread = 200;
  for (AgentKind agent : {AgentKind::kWallOfClocks, AgentKind::kPerVariableOrder}) {
    MveeOptions options;
    options.num_variants = 2;
    options.agent = agent;
    options.rendezvous_timeout = std::chrono::milliseconds(60000);
    options.agent_config.replay_deadline = std::chrono::milliseconds(60000);
    Mvee mvee(options);
    EXPECT_TRUE(mvee.Run(MakeFuzzProgram(spec)).ok()) << AgentKindName(agent);
  }
}

// Tiny sync buffers force continuous producer backpressure through the whole
// random program (the master repeatedly stalls for the slaves).
TEST(MveeStressTest, TinyBuffersBackpressure) {
  FuzzSpec spec;
  spec.seed = 41;
  MveeOptions options;
  options.num_variants = 2;
  options.agent = AgentKind::kWallOfClocks;
  options.agent_config.buffer_capacity = 16;
  options.rendezvous_timeout = std::chrono::milliseconds(60000);
  options.agent_config.replay_deadline = std::chrono::milliseconds(60000);
  Mvee mvee(options);
  ASSERT_TRUE(mvee.Run(MakeFuzzProgram(spec)).ok());
  EXPECT_GT(mvee.report().record_stalls, 0u);
}

}  // namespace
}  // namespace mvee
