#include "mvee/analysis/assignment_plan.h"

#include <map>
#include <set>
#include <sstream>

#include "mvee/analysis/andersen.h"

namespace mvee {

namespace {

bool IsMemoryOp(MirOp op) {
  switch (op) {
    case MirOp::kLockRmw:
    case MirOp::kXchg:
    case MirOp::kLoad:
    case MirOp::kStore:
    case MirOp::kAsmBlock:
      return true;
    default:
      return false;
  }
}

bool IsRmwOp(MirOp op) { return op == MirOp::kLockRmw || op == MirOp::kXchg; }

// Accumulated static evidence about one sync object.
struct ObjectFacts {
  size_t sites = 0;
  size_t rmw_sites = 0;
  std::set<std::string> functions;
  bool aliased = false;
};

}  // namespace

const char* AssignmentVerdictName(AssignmentVerdict verdict) {
  switch (verdict) {
    case AssignmentVerdict::kThreadLocal:
      return "thread-local";
    case AssignmentVerdict::kUncontendedShared:
      return "uncontended-shared";
    case AssignmentVerdict::kSharedHot:
      return "shared-hot";
    case AssignmentVerdict::kAmbiguouslyAliased:
      return "ambiguously-aliased";
  }
  return "?";
}

AssignmentPlanReport DeriveAssignmentPlan(const MirModule& module, const SyncOpReport& report,
                                          const AssignmentPlanOptions& options) {
  AndersenAnalysis points_to(module, options.analysis);
  std::map<int32_t, ObjectFacts> facts;

  for (const auto& function : module.functions) {
    for (const auto& inst : function.instructions) {
      if (!IsMemoryOp(inst.op) || inst.ptr < 0) {
        continue;
      }
      // A site is ambiguous when its pointer may reach more than one sync
      // object: the slave cannot tell from the master's per-variable clock
      // which of the candidates the master actually serialized on. Two
      // bitmap walks — no materialized std::set per site.
      size_t sync_targets = 0;
      points_to.ForEachPointee(inst.ptr, [&](int32_t target) {
        if (report.sync_objects.count(target) != 0) {
          ++sync_targets;
        }
      });
      if (sync_targets == 0) {
        continue;
      }
      points_to.ForEachPointee(inst.ptr, [&](int32_t target) {
        if (report.sync_objects.count(target) == 0) {
          return;
        }
        ObjectFacts& object_facts = facts[target];
        ++object_facts.sites;
        if (IsRmwOp(inst.op)) {
          ++object_facts.rmw_sites;
        }
        object_facts.functions.insert(function.name);
        if (sync_targets >= 2) {
          object_facts.aliased = true;
        }
      });
    }
  }

  AssignmentPlanReport result;
  for (int32_t object : report.sync_objects) {
    if (object < 0 || static_cast<size_t>(object) >= module.objects.size()) {
      continue;
    }
    const MirObject& mir_object = module.objects[object];
    const ObjectFacts& object_facts = facts[object];

    VariableAssignment assignment;
    assignment.name = mir_object.name;
    assignment.object = object;
    assignment.sites = object_facts.sites;
    assignment.rmw_sites = object_facts.rmw_sites;
    assignment.touching_functions = object_facts.functions.size();
    assignment.aliased = object_facts.aliased;

    if (object_facts.aliased) {
      assignment.verdict = AssignmentVerdict::kAmbiguouslyAliased;
      assignment.kind = AgentKind::kPartialOrder;
    } else if (mir_object.storage != MirStorage::kGlobal && object_facts.functions.size() <= 1) {
      assignment.verdict = AssignmentVerdict::kThreadLocal;
      assignment.kind =
          options.allow_null_routes ? AgentKind::kNull : AgentKind::kPerVariableOrder;
    } else if (object_facts.rmw_sites >= 2 && object_facts.functions.size() >= 2) {
      assignment.verdict = AssignmentVerdict::kSharedHot;
      assignment.kind = AgentKind::kTotalOrder;
    } else {
      assignment.verdict = AssignmentVerdict::kUncontendedShared;
      assignment.kind = AgentKind::kPerVariableOrder;
    }

    result.plan.assignments.push_back(
        {assignment.name, assignment.kind, AssignmentVerdictName(assignment.verdict)});
    result.variables.push_back(std::move(assignment));
  }
  return result;
}

std::string FormatAssignmentPlan(const AssignmentPlanReport& report) {
  std::ostringstream out;
  for (const auto& variable : report.variables) {
    out << variable.name << " " << AssignmentVerdictName(variable.verdict) << " -> "
        << AgentKindName(variable.kind) << " (sites=" << variable.sites
        << " rmw=" << variable.rmw_sites << " fns=" << variable.touching_functions << ")\n";
  }
  return out.str();
}

}  // namespace mvee
