// Shared machinery of the sharded TO/PO master recording path
// (docs/DESIGN.md §8): the per-sync-variable shard locks, the global ticket
// counter, the per-master-thread recording rings, and the
// record-with-backpressure push. Both runtimes instantiate this rather than
// carrying private copies, so a change to the lock/ticket/push sequence —
// whose memory ordering the §8 soundness argument depends on — cannot
// silently diverge between the two agents.

#ifndef MVEE_AGENTS_RECORD_SHARDS_H_
#define MVEE_AGENTS_RECORD_SHARDS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "mvee/agents/sync_agent.h"
#include "mvee/util/hash.h"
#include "mvee/util/spin.h"
#include "mvee/util/spsc_ring.h"
#include "mvee/util/variant_killed.h"

namespace mvee {

// Per-variable recording shards + the fetch_add ticket counter. `Extra` is
// a per-shard payload guarded by the shard's lock (empty for TO, the
// dependence-chain tail for PO). Hashing uses WoC's 8-byte bucketing, so
// contention on a shard mirrors the program's own contention on the
// corresponding sync variables; independent ops never share a lock line.
template <typename Extra>
class TicketedRecordShards {
 public:
  // Default shard count when no AgentConfig is in play (standalone tests);
  // configured runtimes size from AgentConfig::record_shard_count, which
  // scales with max_threads.
  static constexpr size_t kDefaultShardCount = 512;  // power of two

  struct alignas(64) Shard {
    std::atomic_flag lock = ATOMIC_FLAG_INIT;
    Extra extra{};

    void Release() { lock.clear(std::memory_order_release); }
  };

  // `enabled` = AgentConfig::sharded_recording; the baseline pays for no
  // shard memory. `shard_count` must be a power of two (ValidatedAgentConfig
  // guarantees it for configured callers).
  explicit TicketedRecordShards(bool enabled, size_t shard_count = kDefaultShardCount)
      : shard_mask_(shard_count - 1), shards_(enabled ? shard_count : 0) {}

  static size_t IndexFor(const void* addr, size_t shard_count) {
    return ClockAddressHash(reinterpret_cast<uint64_t>(addr)) & (shard_count - 1);
  }

  size_t IndexOf(const void* addr) const {
    return ClockAddressHash(reinterpret_cast<uint64_t>(addr)) & shard_mask_;
  }

  size_t shard_count() const { return shard_mask_ + 1; }

  // Spins until the addr's shard lock is held (throws VariantKilled on
  // abort) and accounts contended spins into stats.record_lock_spins. The
  // caller holds the lock across (op + ticket + push) and releases through
  // Shard::Release (usually via RecordIntoRing).
  Shard& Acquire(const void* addr, const AgentControl& control, AgentStats::Shard& stats) {
    Shard& shard = shards_[IndexOf(addr)];
    SpinWait waiter;
    while (shard.lock.test_and_set(std::memory_order_acquire)) {
      if (control.aborted()) {
        throw VariantKilled{};
      }
      waiter.Pause();
    }
    if (waiter.spins() > 0) {
      stats.record_lock_spins.fetch_add(waiter.spins(), std::memory_order_relaxed);
    }
    return shard;
  }

  // Must be called with the op's shard lock held: the §8 soundness argument
  // needs conflicting ops' tickets drawn in conflict order.
  uint64_t DrawTicket() { return ticket_.fetch_add(1, std::memory_order_relaxed); }

  uint64_t TicketsIssued() const { return ticket_.load(std::memory_order_relaxed); }

 private:
  alignas(64) std::atomic<uint64_t> ticket_{0};
  const size_t shard_mask_;
  std::vector<Shard> shards_;
};

// Builds the per-master-thread recording rings: one per logical tid, one
// consumer per slave variant (consumer v-1 belongs to slave variant v).
// Empty when sharded recording is off.
template <typename Entry>
std::vector<std::unique_ptr<BroadcastRing<Entry>>> MakeThreadRecordingRings(
    const AgentConfig& config) {
  std::vector<std::unique_ptr<BroadcastRing<Entry>>> rings;
  if (!config.sharded_recording) {
    return rings;
  }
  rings.reserve(config.max_threads);
  for (uint32_t t = 0; t < config.max_threads; ++t) {
    auto ring = std::make_unique<BroadcastRing<Entry>>(config.buffer_capacity);
    ring->EnableCursorCaching(config.cached_ring_cursors);
    for (uint32_t v = 1; v < config.num_variants; ++v) {
      ring->RegisterConsumer();
    }
    rings.push_back(std::move(ring));
  }
  return rings;
}

// The tail of a sharded master's AfterSyncOp: push the stamped entry into
// the thread's own ring (spinning while the slowest slave variant gates the
// slot), bump ops_recorded, release the shard. The push stays inside the
// shard lock — that chains ring publications of conflicting ops, the
// visibility half of the §8 argument.
template <typename Shard, typename Entry>
void RecordIntoRing(BroadcastRing<Entry>& ring, const Entry& entry, Shard& shard,
                    const AgentControl& control, AgentStats::Shard& stats) {
  if (!ring.TryPush(entry)) {
    stats.record_stalls.fetch_add(1, std::memory_order_relaxed);
    SpinWait waiter;
    while (!ring.TryPush(entry)) {
      if (control.aborted()) {
        shard.Release();
        throw VariantKilled{};
      }
      waiter.Pause();
    }
  }
  stats.ops_recorded.fetch_add(1, std::memory_order_relaxed);
  shard.Release();
}

}  // namespace mvee

#endif  // MVEE_AGENTS_RECORD_SHARDS_H_
