// Why the paper chose record/replay over deterministic multithreading.
//
//   $ ./dmt_divergence
//
// Builds one data-race-free program, "diversifies" it by perturbing its
// instruction counts (what ASLR-adjacent diversity transforms do to the
// performance counters DMT schedulers rely on, paper §2.1), and runs the
// base and diversified variants under:
//   1. Kendo-style DMT        -> schedules diverge (spurious MVEE alarm),
//   2. DThreads-style barriers -> deadlocks on an ad-hoc poll loop (§6),
//   3. record/replay           -> slave matches the master exactly.

#include <cstdio>

#include "mvee/dmt/program.h"
#include "mvee/dmt/replay.h"
#include "mvee/dmt/schedule.h"
#include "mvee/dmt/scheduler.h"

using namespace mvee::dmt;

namespace {

void Report(const char* what, const Schedule& base, const Schedule& variant,
            const Program& program) {
  if (!variant.completed) {
    std::printf("%-24s DEADLOCK: %s\n", what, variant.failure.c_str());
    return;
  }
  const auto divergence =
      CompareSchedules(base, variant, program.thread_count(), program.lock_count);
  if (divergence.diverged) {
    std::printf("%-24s DIVERGED: thread %u's syscall #%zu differs "
                "(%.1f%% of lock acquisitions out of order)\n",
                what, divergence.first_tid, divergence.first_index,
                100.0 * divergence.mismatch_fraction);
  } else {
    std::printf("%-24s OK: schedules identical\n", what);
  }
}

}  // namespace

int main() {
  // A contended 4-thread program: 3 locks, syscalls sprinkled in, plus one
  // ad-hoc flag pair (a thread polling a plain variable, Listing 2-style).
  ProgramSpec spec;
  spec.threads = 4;
  spec.locks = 3;
  spec.sections_per_thread = 50;
  spec.syscall_probability = 0.5;
  spec.flag_pairs = 1;
  const Program base_program = GenerateProgram(spec, /*seed=*/2026);

  // The "diversified" variant: same logic, instruction counts shifted ±15%.
  const Program diversified = PerturbCosts(base_program, 0.15, /*seed=*/7);

  std::printf("program: %u threads, %u locks, 1 ad-hoc flag pair\n\n",
              spec.threads, spec.locks);

  // 1. Kendo: deterministic per variant, but the determinism is a function
  //    of instruction counts — so the variants disagree.
  KendoScheduler kendo;
  const Schedule kendo_base = kendo.Run(base_program);
  const Schedule kendo_variant = kendo.Run(diversified);
  Report("kendo (DMT):", kendo_base, kendo_variant, base_program);

  // 2. Global-barrier DMT: immune to the perturbation, but the poll loop
  //    never reaches the barrier, so the whole variant hangs.
  BarrierScheduler barrier;
  const Schedule barrier_base = barrier.Run(base_program);
  Report("barrier (DMT):", barrier_base, barrier_base, base_program);

  // 3. Record/replay, the paper's design: record the master under the
  //    native scheduler, enforce the recorded order in the diversified
  //    slave. Matches exactly, poll loop and all.
  const Schedule master = RecordMaster(base_program, /*seed=*/1);
  ReplayScheduler replayer(master, base_program.lock_count, base_program.flag_count,
                           /*scheduler_seed=*/99);
  const Schedule slave = replayer.Run(diversified);
  Report("record/replay (MVEE):", master, slave, base_program);
  std::printf("\nreplay enforcement stalled the slave %llu times — the agent's\n"
              "suspend-until-your-turn from paper §3.2 in abstract form.\n",
              static_cast<unsigned long long>(replayer.stalls()));
  return 0;
}
