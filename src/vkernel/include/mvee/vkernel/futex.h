// Kernel-side futex table.
//
// sys_futex is the one blocking non-I/O syscall; the paper treats it like an
// I/O operation: only the master executes it, slaves receive the replicated
// result (§4.1, footnote 5). Waiters are keyed by the *logical* (diversity-
// normalized) address of the futex word so that a wake issued by one master
// thread finds waiters registered by other master threads even though their
// diversified virtual addresses differ.
//
// Concurrency (docs/DESIGN.md §7): under the sharded mode the table is
// kFutexShards cache-padded hash shards, each with its own lock over a small
// address -> bucket map. A bucket is an intrusive FIFO of stack-allocated
// WaitNodes; the waker unlinks the nodes it targets and releases each
// through its own ParkingSpot, so one wake never serializes against waits on
// other addresses (the seed funnelled every address through one mutex and
// one broadcast condvar). A bucket is reclaimed the moment its last waiter
// is unlinked — a long-running server no longer retains per-address state
// for every futex word ever slept on. The seed's global-mutex/condvar
// implementation survives as the measurable baseline (sharded = false).

#ifndef MVEE_VKERNEL_FUTEX_H_
#define MVEE_VKERNEL_FUTEX_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "mvee/util/park.h"
#include "mvee/util/rng.h"
#include "mvee/vkernel/vkernel_config.h"
#include "mvee/vkernel/waitq.h"

namespace mvee {

class FutexTable : public Waitable {
 public:
  explicit FutexTable(bool sharded = DefaultShardedVkernel(),
                      WaitRegistry* registry = nullptr, WaitStats* stats = nullptr)
      : sharded_(sharded), registry_(registry), stats_(stats) {
    RegisterWaitable(registry);
  }
  // Unregister while the shards/buckets a concurrent ShutdownWake touches
  // still exist (see Waitable::UnregisterWaitable).
  ~FutexTable() override { UnregisterWaitable(); }

  // Blocks the caller while *word == expected (with the usual futex race
  // semantics: returns -EAGAIN immediately if *word != expected at entry).
  // Returns 0 when woken.
  int64_t Wait(uint64_t logical_addr, const std::atomic<int32_t>* word, int32_t expected);

  // Wakes up to `count` waiters on the address; returns the number woken.
  int64_t Wake(uint64_t logical_addr, int32_t count);

  // Wakes every waiter on every address (MVEE shutdown path).
  void WakeAll();

  // Waitable: the registry's teardown drain.
  void ShutdownWake() override { WakeAll(); }

  // Number of threads currently blocked (all addresses). Test helper.
  size_t WaiterCount() const;

  // Number of retained per-address buckets (leak regression tests: must
  // return to zero once every waiter left).
  size_t BucketCount() const;

  // "addr=0x... waiters=2 pending=0; ..." — hang diagnostics.
  std::string DebugString() const;

 private:
  // --- Sharded implementation ----------------------------------------------

  static constexpr size_t kFutexShards = 64;

  // One blocked thread; lives on the waiter's stack. The waker unlinks the
  // node under the shard lock and releases it with one `woken` store — its
  // LAST access to the node, because the waiter is free to return (and pop
  // the node off its stack) the moment it observes the store. Parking
  // happens on the *shard's* ParkingSpot, whose lifetime is the table's, so
  // the waker's WakeParked never touches dying stack memory.
  struct WaitNode {
    WaitNode* next = nullptr;
    std::atomic<bool> woken{false};
  };

  // FIFO of blocked threads on one address. Reclaimed at zero waiters.
  struct AddrQueue {
    WaitNode* head = nullptr;
    WaitNode* tail = nullptr;
    int32_t waiters = 0;
  };

  struct alignas(64) Shard {
    mutable std::mutex mutex;
    std::map<uint64_t, AddrQueue> queues;
    ParkingSpot park;
  };

  Shard& ShardFor(uint64_t logical_addr) {
    // SplitMix64 avalanche so sequential addresses spread across shards.
    return shards_[SplitMix64(logical_addr) & (kFutexShards - 1)];
  }

  int64_t WaitSharded(uint64_t logical_addr, const std::atomic<int32_t>* word,
                      int32_t expected);
  int64_t WakeSharded(uint64_t logical_addr, int32_t count);

  // --- Baseline (the seed's single mutex + broadcast condvar) --------------

  // FIFO-targeted wakeups, like the real futex queue: each waiter takes a
  // ticket; a wake releases the oldest `count` waiters *registered at wake
  // time*. A later registrant can never consume a wake issued before it
  // joined (that un-targeted-credit behaviour loses wakeups: the waiter the
  // wake was meant for sleeps forever once its expected value is stale).
  struct Bucket {
    std::condition_variable cv;
    uint64_t next_ticket = 0;  // Ticket for the next waiter to register.
    uint64_t wake_upto = 0;    // Tickets below this are released.
    int32_t waiters = 0;
  };

  int64_t WaitGlobal(uint64_t logical_addr, const std::atomic<int32_t>* word,
                     int32_t expected);
  int64_t WakeGlobal(uint64_t logical_addr, int32_t count);

  const bool sharded_;
  // Shutdown visibility: a Wait that starts after ShutdownAll ran must not
  // enqueue a node nobody will ever wake (WakeAll already drained the
  // shards), and a parked waiter must cancel itself when the flag rises.
  WaitRegistry* const registry_;
  WaitStats* const stats_;

  Shard shards_[kFutexShards];

  mutable std::mutex mutex_;
  std::map<uint64_t, Bucket> buckets_;
};

}  // namespace mvee

#endif  // MVEE_VKERNEL_FUTEX_H_
