#include "mvee/util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace mvee {

void SampleStats::Add(double sample) { samples_.push_back(sample); }

double SampleStats::Mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double s : samples_) {
    sum += s;
  }
  return sum / static_cast<double>(samples_.size());
}

double SampleStats::StdDev() const {
  if (samples_.size() < 2) {
    return 0.0;
  }
  const double mean = Mean();
  double acc = 0.0;
  for (double s : samples_) {
    acc += (s - mean) * (s - mean);
  }
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double SampleStats::Min() const {
  if (samples_.empty()) {
    return 0.0;
  }
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleStats::Max() const {
  if (samples_.empty()) {
    return 0.0;
  }
  return *std::max_element(samples_.begin(), samples_.end());
}

double SampleStats::GeoMean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  double log_sum = 0.0;
  for (double s : samples_) {
    log_sum += std::log(s > 0 ? s : 1e-12);
  }
  return std::exp(log_sum / static_cast<double>(samples_.size()));
}

double SampleStats::Percentile(double p) const {
  if (samples_.empty()) {
    return 0.0;
  }
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

void LatencyHistogram::Record(uint64_t nanos) {
  size_t bucket = 0;
  uint64_t bound = 1;
  while (bucket + 1 < kBuckets && nanos > bound) {
    bound <<= 1;
    ++bucket;
  }
  ++counts_[bucket];
}

uint64_t LatencyHistogram::TotalCount() const {
  uint64_t total = 0;
  for (uint64_t c : counts_) {
    total += c;
  }
  return total;
}

uint64_t LatencyHistogram::BucketBound(size_t i) { return 1ULL << i; }

uint64_t LatencyHistogram::ApproxPercentile(double p) const {
  const uint64_t total = TotalCount();
  if (total == 0) {
    return 0;
  }
  const auto target = static_cast<uint64_t>(p / 100.0 * static_cast<double>(total));
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += counts_[i];
    if (seen >= target) {
      return BucketBound(i);
    }
  }
  return BucketBound(kBuckets - 1);
}

std::string LatencyHistogram::ToString() const {
  std::ostringstream out;
  for (size_t i = 0; i < kBuckets; ++i) {
    if (counts_[i] != 0) {
      out << "<=" << BucketBound(i) << "ns:" << counts_[i] << " ";
    }
  }
  return out.str();
}

}  // namespace mvee
