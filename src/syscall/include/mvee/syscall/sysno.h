// Virtual system call numbers and their monitor-relevant classification.
//
// The vkernel exposes a Linux-flavoured syscall surface. Each call belongs to
// one replication class that tells the monitor how to handle it (paper §2,
// §4.1):
//
//  - kReplicated  ("I/O class"): executed by the master variant only; the
//    return value and any output data are copied to the slaves. Includes all
//    blocking calls — the paper treats those as I/O because the syscall
//    ordering mechanism wraps calls in critical sections and therefore cannot
//    order calls that may never return (§4.1 Limitations). sys_futex is
//    explicitly called out as the one blocking non-I/O call handled this way.
//  - kOrdered     (shared-resource class): executed by every variant against
//    its own kernel state, but cross-thread ordering within each variant is
//    enforced with the syscall ordering clock so that e.g. file descriptor
//    numbers come out identical in all variants (§3.1's sys_open example).
//  - kLocal       (benign class): executed by every variant locally with no
//    ordering requirement (getpid, sched_yield, ...). Still compared in
//    lockstep under the strictest monitoring policy.
//  - kControl     (MVEE control): exit handling and the "self-awareness"
//    pseudo-call the paper adds so agents learn their master/slave role
//    without a kernel patch (§4.5).

#ifndef MVEE_SYSCALL_SYSNO_H_
#define MVEE_SYSCALL_SYSNO_H_

#include <cstdint>

namespace mvee {

enum class Sysno : uint16_t {
  // File I/O.
  kOpen = 0,
  kClose,
  kRead,
  kWrite,
  kPread,
  kPwrite,
  kLseek,
  kStat,
  kUnlink,
  kDup,
  kFcntl,
  kPipe,
  // Memory.
  kBrk,
  kMmap,
  kMunmap,
  kMprotect,
  // Threads / scheduling.
  kFutex,
  kSchedYield,
  kGettid,
  kGetpid,
  kClone,
  // Time.
  kGettimeofday,
  kClockGettime,
  kNanosleep,
  kRdtsc,  // Not a syscall on real x86, but the paper replicates it like one (§5.4).
  // Sockets.
  kSocket,
  kBind,
  kListen,
  kAccept,
  kConnect,
  kSend,
  kRecv,
  kShutdown,
  kPoll,  // Readiness multiplexing over fds (event-driven servers).
  // Randomness.
  kGetrandom,
  // Process control.
  kExit,
  kExitGroup,
  // Signals: registration and targeted delivery. Real MVEEs must deliver
  // asynchronous signals at equivalent points in all variants (GHUMVEE-style
  // monitors defer delivery to a synchronization point); here the delivery
  // point is the lockstep rendezvous.
  kSigaction,
  kKill,
  // MVEE control (non-existing kernel syscalls; the monitor intercepts them).
  kMveeSelfAware,
  kMveeCheckpoint,

  kCount,
};

// sys_poll event bits (one byte per fd in the request payload).
struct PollEvents {
  static constexpr uint8_t kIn = 1;   // Read / accept would not block.
  static constexpr uint8_t kOut = 2;  // Write would not block.
  static constexpr uint8_t kHup = 4;  // Output only: stream closed.
};

// sys_futex operation selector (arg0).
struct FutexOp {
  static constexpr int64_t kWait = 0;
  static constexpr int64_t kWake = 1;
};

// Replication class, per the table above.
enum class SyscallClass : uint8_t {
  kReplicated = 0,
  kOrdered,
  kLocal,
  kControl,
};

// Security sensitivity. Under the relaxed "security-sensitive only"
// monitoring policy (§5.1 Correctness), only sensitive calls rendezvous in
// lockstep; the rest are sanity-checked asynchronously.
enum class SyscallSensitivity : uint8_t {
  kSensitive = 0,  // Affects external world or address space: write, mmap, ...
  kBenign,
};

// Returns the class of `sysno`.
SyscallClass ClassOf(Sysno sysno);

// Returns the sensitivity of `sysno`.
SyscallSensitivity SensitivityOf(Sysno sysno);

// Stable lowercase name, e.g. "sys_open".
const char* SysnoName(Sysno sysno);

}  // namespace mvee

#endif  // MVEE_SYSCALL_SYSNO_H_
