// Unified per-analysis cost accounting.
//
// Every points-to engine (Steensgaard, baseline Andersen, the wave solver,
// the field-sensitive solver) fills one AnalysisStats during construction
// instead of growing ad-hoc per-class getters. The stats ride along in
// SyncOpReport, show up in the Table-3 output, and are what
// bench_analysis.cc serializes into BENCH_analysis.json — so solver cost is
// diffable across commits the same way agent throughput is.

#ifndef MVEE_ANALYSIS_STATS_H_
#define MVEE_ANALYSIS_STATS_H_

#include <cstdint>
#include <string>

namespace mvee {

struct AnalysisStats {
  // Which engine produced the solution ("steensgaard", "andersen-baseline",
  // "andersen-wave", "field-sensitive").
  std::string solver;
  // Worklist pops (set-based solvers) / node visits across waves (wave
  // solver) / unify operations (Steensgaard). The engines' unit of work.
  uint64_t solver_iterations = 0;
  // Seed constraints extracted from the module (addr-of + copy + call).
  uint64_t constraints = 0;
  // Copy-graph edges, including edges added by call resolution.
  uint64_t copy_edges = 0;
  // Call-graph edges resolved (direct + indirect x callee).
  uint64_t call_edges_resolved = 0;
  // Constraint nodes unified by online cycle detection (wave solver) or by
  // class unification (Steensgaard).
  uint64_t sccs_collapsed = 0;
  // Memory footprint of the final points-to solution in the engine's native
  // representation (sets vs sparse bitmaps).
  uint64_t points_to_bytes = 0;
};

}  // namespace mvee

#endif  // MVEE_ANALYSIS_STATS_H_
