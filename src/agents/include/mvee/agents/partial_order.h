// Partial-order (PO) replication agent (paper §4.5, Figure 4b).
//
// The master records (thread, sync-variable key) pairs; slaves only enforce
// the recorded order between *dependent* ops — ops on the same sync
// variable. A slave thread locates its next entry and may execute as soon as
// every unconsumed earlier entry with the same key has been consumed. This
// eliminates TO's unnecessary stalls at the cost of dependence scans and
// extra memory pressure (§4.5).
//
// Two recording paths (AgentConfig::sharded_recording, docs/DESIGN.md §8):
//  - Sharded (default): per-master-thread recording rings; entries carry a
//    global sequence drawn from one fetch_add ticket counter inside a
//    per-sync-variable shard lock, so the sequence order is a linear
//    extension of the conflict order and the global master lock is gone.
//    Because the shard lock is held while the ticket is drawn, the master
//    knows each op's immediate same-shard predecessor for free and records
//    the edge (prev_tid, prev_seq) in the entry. Slave thread t's next
//    entry is its own ring's front, and the dependence wait is O(1): wait
//    until thread prev_tid's consumed-watermark (the sequence it publishes
//    after every replayed op) passes prev_seq — no window scan at all,
//    where the baseline scans O(po_window) entries per op. The watermark
//    is a dedicated per-thread atomic, NOT a peek into the predecessor's
//    ring: a cross-thread peek races that ring's cursor advance and could
//    read a recycled slot's (much larger) sequence, wrongly releasing the
//    waiter. Shard collisions merge chains of distinct variables, which
//    over-serializes exactly like WoC's hash collisions (§4.5) and is just
//    as benign.
//  - Global-lock baseline (sharded_recording = false): the seed's single
//    global buffer under one instrumentation lock, with the po_window
//    lookahead scan. Kept selectable for in-run A/B sweeps.

#ifndef MVEE_AGENTS_PARTIAL_ORDER_H_
#define MVEE_AGENTS_PARTIAL_ORDER_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "mvee/agents/record_shards.h"
#include "mvee/agents/sync_agent.h"
#include "mvee/util/spsc_ring.h"
#include "mvee/util/watermark.h"

namespace mvee {

class PartialOrderRuntime {
 public:
  PartialOrderRuntime(const AgentConfig& config, AgentControl control);

  std::unique_ptr<SyncAgent> CreateAgent(uint32_t variant_index);

  // Excision (docs/DESIGN.md §9): stop `variant`'s stalled ring cursors from
  // gating the master's recording, so survivors keep producing after the
  // variant left. Safe concurrently with running agents.
  void DetachVariant(uint32_t variant);

  const AgentStats& stats() const { return stats_; }
  // Tickets drawn so far (sharded mode; 0 under the global-lock baseline).
  uint64_t SequencesIssued() const { return record_shards_.TicketsIssued(); }
  bool sharded_recording() const { return config_.sharded_recording; }
  // Per-thread recording rings materialized so far (lazy allocation).
  uint64_t RecordingRingsCreated() const { return thread_rings_.CreatedCount(); }
  // Sharded mode: every sequence below the returned value has been replayed
  // by slave `variant` (folds the watermark first). Exposed for the po_window
  // test; 0 under the baseline or for out-of-range variants.
  uint64_t ReplayedPrefix(uint32_t variant);

  // Which recording shard an address hashes to. Exposed for tests that need
  // sync variables in provably distinct shards (shard collisions merge
  // dependence chains, which is correct but over-serializing).
  static size_t RecordShardIndex(const void* addr);

 private:
  friend class PartialOrderAgent;

  // Sentinel for "no same-shard predecessor" (first op on a shard).
  static constexpr uint64_t kNoPrev = ~uint64_t{0};

  struct Entry {
    uint32_t tid = 0;
    uint64_t key = 0;            // master-space sync-variable identity
    uint64_t seq = 0;            // global ticket (sharded mode only)
    uint64_t prev_seq = kNoPrev; // same-shard predecessor's ticket
    uint32_t prev_tid = 0;       // ...and the thread that recorded it
  };

  // Chain tail for the dependence edges, written and read only under the
  // owning shard's lock (plain fields on the shard's private line).
  struct ChainTail {
    uint64_t last_seq = kNoPrev;
    uint32_t last_tid = 0;
  };
  using RecordShards = TicketedRecordShards<ChainTail>;

  // Per-thread consumed-watermark for the sharded dependence wait: thread t
  // has replayed every one of its entries with sequence < `next`.
  struct alignas(64) ConsumedMark {
    std::atomic<uint64_t> next{0};
  };

  // Per-slave-variant replay state. The sharded path uses only consumer_id
  // and consumed_through; the window-scan vectors belong to the global-lock
  // baseline.
  struct SlaveState {
    // consumed[seq & mask] == seq + 1: entry seq has been replayed. The mark
    // is the sequence itself (not a 0/1 flag) so slot reuse needs no
    // clearing step: a stale mark from the previous lap never equals the
    // current lap's seq + 1. That is what makes the lock-free retire loop
    // below safe — a 0/1 flag would need a clear that races with
    // out-of-order cursor advances.
    std::vector<std::atomic<uint64_t>> consumed;
    // Next entry index each thread will look for (owned by that thread).
    std::vector<std::atomic<uint64_t>> next_index_by_tid;
    // First unretired sequence. Advanced by a lock-free CAS race in
    // RetireConsumedPrefix (each slot has exactly one winner); readers load
    // the atomic directly (base only moves forward, stale reads are safe).
    std::atomic<uint64_t> base{0};
    // Sharded mode: consumed_through[t].next - 1 is the last sequence
    // thread t replayed (released in AfterSyncOp, acquired by waiters).
    std::vector<ConsumedMark> consumed_through;
    // Sharded mode: cross-thread min-replayed-sequence watermark feeding the
    // master's po_window gate. Marked by the replaying thread in AfterSyncOp
    // (one release store); folded by whoever waits on it.
    std::unique_ptr<PrefixWatermark> replay_mark;
    size_t consumer_id = 0;
  };

  // Sharded po_window gate (master side, pre-Acquire). Enforces the paper's
  // lookahead window — which the baseline gets for free from its window
  // scan — against the shared replay watermark: stall while the next ticket
  // would run more than po_window past the slowest live slave's replayed
  // prefix. The check happens before the shard lock is taken, so up to
  // max_threads threads can pass the gate and then draw tickets; the
  // overshoot is bounded by max_threads, which sizes the watermark below.
  void GateOnReplayWindow(uint32_t tid, AgentStats::Shard& stats);

  // Retires the consumed prefix of the baseline ring so the producer can
  // reuse the slots. Lock-free and safe to call from any slave thread of
  // the variant; stalled threads call it too (helping), so retirement can
  // never wedge behind a thread that finished its op and went idle.
  void RetireConsumedPrefix(SlaveState* slave);

  AgentConfig config_;
  AgentControl control_;
  AgentStats stats_;
  // Global-lock baseline state.
  BroadcastRing<Entry> ring_;
  std::atomic_flag master_lock_ = ATOMIC_FLAG_INIT;
  std::vector<std::unique_ptr<SlaveState>> slaves_;  // index: variant-1
  // Sharded recording state (docs/DESIGN.md §8, shared with TO through
  // record_shards.h).
  RecordShards record_shards_;
  LazyRingSet<Entry> thread_rings_;  // [tid], created on first touch
  // Slave variants excised from the window gate (bit variant-1): a dead
  // variant's frozen watermark must not stall the master forever.
  std::atomic<uint32_t> detached_slaves_{0};
  // Gate fast path: tickets below this limit are inside the window for every
  // live slave. Monotone cache of min_prefix + po_window; refreshed on the
  // slow path only.
  alignas(64) std::atomic<uint64_t> window_limit_{0};
};

class PartialOrderAgent final : public SyncAgent {
 public:
  PartialOrderAgent(PartialOrderRuntime* runtime, AgentRole role,
                    PartialOrderRuntime::SlaveState* slave);

  void BeforeSyncOp(uint32_t tid, const void* addr) override;
  void AfterSyncOp(uint32_t tid, const void* addr) override;
  AgentRole role() const override { return role_; }
  const char* name() const override { return "partial-order"; }

 private:
  PartialOrderRuntime* const runtime_;
  const AgentRole role_;
  PartialOrderRuntime::SlaveState* const slave_;
  // Stats shard key: 0 for the master, consumer id + 1 for slaves.
  const uint32_t stats_variant_;
  // The entry this thread matched in BeforeSyncOp, consumed in AfterSyncOp
  // (baseline: its global-ring index; sharded: its ticket sequence). One
  // pending op per thread; sized from config.max_threads (a fixed 256-slot
  // array here used to overrun silently).
  std::vector<uint64_t> pending_index_;
  // Sharded recording: shard locked in BeforeSyncOp, released (after the
  // ticket + push) in AfterSyncOp — cached so After does not re-hash.
  std::vector<PartialOrderRuntime::RecordShards::Shard*> held_shard_;
};

}  // namespace mvee

#endif  // MVEE_AGENTS_PARTIAL_ORDER_H_
