#include "mvee/monitor/thread_set.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "mvee/util/spin.h"
#include "mvee/util/variant_killed.h"

namespace mvee {

ThreadSetMonitor::ThreadSetMonitor(uint32_t tid, MonitorShared* shared)
    : tid_(tid), shared_(shared) {
  const uint32_t n = shared_->options->num_variants;
  requests_.resize(n, nullptr);
  digests_.resize(n, 0);
  if (shared_->options->sync_model == SyncModel::kLoose) {
    // Ring depth = how far the leader may run ahead (§2 reliability model).
    size_t depth = 2;
    while (depth < shared_->options->loose_buffer_depth) {
      depth <<= 1;
    }
    loose_ring_ = std::make_unique<BroadcastRing<std::shared_ptr<LooseRecord>>>(depth);
    for (uint32_t v = 1; v < n; ++v) {
      loose_ring_->RegisterConsumer();
    }
  }
}

std::string ThreadSetMonitor::DebugString() {
  std::unique_lock<std::mutex> lock(mutex_, std::try_to_lock);
  std::ostringstream out;
  out << "tid=" << tid_;
  if (!lock.owns_lock()) {
    out << " <mutex busy>";
    return out.str();
  }
  out << " phase=" << (phase_ == Phase::kGather ? "gather" : "execute") << " arrived="
      << arrived_ << " drained=" << drained_ << " master_done=" << master_done_;
  for (size_t v = 0; v < requests_.size(); ++v) {
    if (requests_[v] != nullptr) {
      out << " v" << v << "=" << SysnoName(requests_[v]->sysno);
    }
  }
  return out.str();
}

void ThreadSetMonitor::NotifyShutdown() {
  // Empty critical section: serializes with any waiter's predicate check so
  // the notification cannot land in the unlock-to-sleep window. Callers must
  // never hold mutex_ when reporting (RunSyscall unlocks first).
  { std::lock_guard<std::mutex> lock(mutex_); }
  cv_.notify_all();
}

bool ThreadSetMonitor::MustCompare(const SyscallRequest& request) const {
  switch (shared_->options->policy) {
    case MonitorPolicy::kLockstepAll:
      return true;
    case MonitorPolicy::kLockstepSensitive:
      return SensitivityOf(request.sysno) == SyscallSensitivity::kSensitive;
  }
  return true;
}

std::string ThreadSetMonitor::CompareRound() const {
  const uint32_t n = shared_->options->num_variants;
  if (!MustCompare(*requests_[0])) {
    return "";
  }
  for (uint32_t v = 1; v < n; ++v) {
    if (requests_[v]->sysno != requests_[0]->sysno) {
      std::ostringstream detail;
      detail << "thread " << tid_ << ": syscall number mismatch: " << requests_[0]->ToString()
             << " (variant 0) vs " << requests_[v]->ToString() << " (variant " << v << ")";
      return detail.str();
    }
    if (digests_[v] != digests_[0]) {
      std::ostringstream detail;
      detail << "thread " << tid_ << ": argument mismatch on " << requests_[0]->ToString()
             << " (variant 0) vs " << requests_[v]->ToString() << " (variant " << v << ")";
      return detail.str();
    }
  }
  return "";
}

void ThreadSetMonitor::RouteSignals(const SyscallRequest& request, std::vector<int32_t>* out) {
  std::lock_guard<std::mutex> lock(shared_->signal_mutex);
  if (request.sysno == Sysno::kKill) {
    shared_->pending_signals[static_cast<uint32_t>(request.arg0)].push_back(
        static_cast<int32_t>(request.arg1));
  }
  auto pending = shared_->pending_signals.find(tid_);
  if (pending != shared_->pending_signals.end()) {
    out->assign(pending->second.begin(), pending->second.end());
    pending->second.clear();
  } else {
    out->clear();
  }
}

// Executes `request` in the ordering critical section of `domain`, stamping
// the (domain, timestamp) pair slaves replay against. `execute` performs the
// actual kernel call and returns its result.
template <typename ExecuteFn>
static SyscallResult StampOrdered(OrderDomain* domain, ExecuteFn&& execute) {
  std::lock_guard<std::mutex> order_lock(domain->mutex);
  SyscallResult result = execute();
  result.order_timestamp = domain->next_ts++;
  result.order_domain = domain->id;
  result.order_domain_hint = domain;
  return result;
}

// The ordering domain `request` is stamped in. Sharded mode partitions by
// resource (docs/syscall_ordering.md); the global-clock baseline maps every
// call to the single kFdNamespace domain, which reproduces the seed's cost
// profile exactly — one mutex, one counter, one replay clock per variant.
uint32_t ThreadSetMonitor::StampDomainOf(ProcessState& process, const SyscallRequest& request) {
  if (!shared_->options->sharded_order_domains) {
    return OrderDomainIds::kFdNamespace;
  }
  return shared_->kernel->OrderDomainOf(process, request);
}

SyscallResult ThreadSetMonitor::ExecuteMaster(SyscallRequest& request, SyscallClass klass) {
  ProcessState& process = *shared_->processes[0];
  switch (klass) {
    case SyscallClass::kReplicated: {
      const bool ordering = shared_->options->order_resource_calls;
      // Descriptor-allocating replicated calls need their fd-table effect
      // ordered against the ordered open/close stream, or slave fd numbering
      // drifts: both stamp in the fd-namespace domain. sys_accept blocks, so
      // only its *allocation half* enters the critical section (two-phase
      // accept) — the §4.1 invariant (blocking never ordered) is preserved
      // because AcceptBlocking runs before any lock is taken; sys_socket is
      // non-blocking and runs entirely inside.
      if (ordering && request.sysno == Sysno::kAccept) {
        int64_t error = 0;
        auto conn = shared_->kernel->AcceptBlocking(process,
                                                    static_cast<int32_t>(request.arg0), &error);
        if (conn == nullptr) {
          SyscallResult result;
          result.retval = error;
          return result;
        }
        OrderDomain* domain =
            shared_->order_domains->FindOrCreate(OrderDomainIds::kFdNamespace);
        return StampOrdered(domain, [&] {
          SyscallResult result;
          result.retval = shared_->kernel->FinishAccept(process, std::move(conn));
          return result;
        });
      }
      if (ordering && request.sysno == Sysno::kSocket) {
        OrderDomain* domain =
            shared_->order_domains->FindOrCreate(OrderDomainIds::kFdNamespace);
        return StampOrdered(domain,
                            [&] { return shared_->kernel->Execute(process, request); });
      }
      // May block (I/O, futex). No ordering-clock critical section is held,
      // which is exactly why blocking calls must be in this class (§4.1
      // Limitations).
      return shared_->kernel->Execute(process, request);
    }

    case SyscallClass::kOrdered: {
      if (!shared_->options->order_resource_calls) {
        return shared_->kernel->Execute(process, request);
      }
      // Lamport timestamp under the resource domain's critical section:
      // conflicting calls replay in true execution order (§4.1), while —
      // under sharding — calls on disjoint resources no longer serialize
      // against each other (docs/syscall_ordering.md).
      const bool sharded = shared_->options->sharded_order_domains;
      OrderDomain* domain =
          shared_->order_domains->FindOrCreate(StampDomainOf(process, request));
      uint32_t retire_id = OrderDomainIds::kNone;
      SyscallResult result = StampOrdered(domain, [&] {
        // A close tears down its descriptor's per-fd domain; resolve the
        // victim inside the fd-namespace critical section (closes are
        // serialized here, so a racing double-close cannot retire a stale
        // id for a descriptor number that was already reused) and before
        // Execute frees the entry.
        if (sharded && request.sysno == Sysno::kClose) {
          retire_id = process.fds().OrderDomainOf(static_cast<int32_t>(request.arg0));
        }
        return shared_->kernel->Execute(process, request);
      });
      if (result.retval == 0 && retire_id != OrderDomainIds::kNone) {
        shared_->order_domains->Retire(retire_id);
      }
      return result;
    }

    case SyscallClass::kLocal:
      return shared_->kernel->Execute(process, request);

    case SyscallClass::kControl: {
      SyscallResult result;
      switch (request.sysno) {
        case Sysno::kMveeSelfAware:
          result.retval = 0;  // Master's variant index.
          break;
        case Sysno::kClone:
          result.retval = control_retval_;
          break;
        default:
          result.retval = 0;
          break;
      }
      return result;
    }
  }
  return SyscallResult{};
}

std::atomic<uint64_t>& ThreadSetMonitor::SlaveClockFor(uint32_t variant,
                                                       const SyscallResult& master) {
  // The master stamps a direct domain pointer (stable until end-of-run
  // reclamation) so the replay hot path skips the table lookup.
  auto* domain = static_cast<OrderDomain*>(master.order_domain_hint);
  if (domain == nullptr) {
    domain = shared_->order_domains->FindOrCreate(master.order_domain);
  }
  return domain->SlaveClock(variant);
}

void ThreadSetMonitor::AwaitOrderClock(std::atomic<uint64_t>& clock, uint64_t want,
                                       uint32_t variant, const SyscallRequest& request,
                                       const char* what) {
  SpinWait waiter;
  DeadlineGate deadline(shared_->options->rendezvous_timeout);
  while (clock.load(std::memory_order_acquire) != want) {
    if (shared_->reporter->tripped()) {
      throw VariantKilled{};
    }
    if (deadline.Expired(waiter)) {
      std::ostringstream detail;
      detail << "thread " << tid_ << ": ordering clock stall in variant " << variant
             << " (at " << clock.load() << ", want " << want << ") " << what << " "
             << request.ToString();
      shared_->reporter->Report(StatusCode::kTimeout, detail.str());
      throw VariantKilled{};
    }
    waiter.Pause();
  }
}

int64_t ThreadSetMonitor::ExecuteSlave(uint32_t variant, SyscallRequest& request,
                                       SyscallClass klass, const SyscallResult& master) {
  // Runs WITHOUT mutex_ held; reporting from here is safe.
  ProcessState& process = *shared_->processes[variant];
  switch (klass) {
    case SyscallClass::kReplicated: {
      if (!master.out_bytes.empty() && !request.out_data.empty()) {
        const size_t count = std::min(master.out_bytes.size(), request.out_data.size());
        std::memcpy(request.out_data.data(), master.out_bytes.data(), count);
      }
      // Shadow-fd installation must land at the same point of this variant's
      // ordered-call stream as the master's allocation did (see
      // ExecuteMaster's two-phase accept).
      const bool fd_allocating =
          request.sysno == Sysno::kAccept || request.sysno == Sysno::kSocket;
      if (fd_allocating && shared_->options->order_resource_calls && master.retval >= 0) {
        auto& clock = SlaveClockFor(variant, master);
        const uint64_t want = master.order_timestamp;
        AwaitOrderClock(clock, want, variant, request, "applying shadow fd for");
        const int64_t check = shared_->kernel->ApplyReplicatedEffect(process, request, master);
        clock.store(want + 1, std::memory_order_release);
        if (check != master.retval) {
          std::ostringstream detail;
          detail << "thread " << tid_ << ": shadow fd mismatch on " << SysnoName(request.sysno)
                 << ": master " << master.retval << " vs variant " << variant << " fd "
                 << check;
          shared_->reporter->Report(StatusCode::kDivergence, detail.str());
          throw VariantKilled{};
        }
        return master.retval;
      }
      const int64_t check = shared_->kernel->ApplyReplicatedEffect(process, request, master);
      const bool allocates_fd =
          request.sysno == Sysno::kAccept || request.sysno == Sysno::kSocket;
      if (allocates_fd && master.retval >= 0 && check != master.retval) {
        std::ostringstream detail;
        detail << "thread " << tid_ << ": shadow fd mismatch on " << SysnoName(request.sysno)
               << ": master " << master.retval << " vs variant " << variant << " fd " << check;
        shared_->reporter->Report(StatusCode::kDivergence, detail.str());
        throw VariantKilled{};
      }
      return master.retval;
    }

    case SyscallClass::kOrdered: {
      if (shared_->options->order_resource_calls) {
        // Spin until this variant's private ordering clock — per-domain under
        // sharding, variant-wide otherwise — reaches the recorded timestamp
        // (§4.1). Replays of calls on disjoint domains proceed in parallel.
        auto& clock = SlaveClockFor(variant, master);
        const uint64_t want = master.order_timestamp;
        AwaitOrderClock(clock, want, variant, request, "for");
        const int64_t retval = shared_->kernel->Execute(process, request).retval;
        clock.store(want + 1, std::memory_order_release);
        return retval;
      }
      return shared_->kernel->Execute(process, request).retval;
    }

    case SyscallClass::kLocal:
      return shared_->kernel->Execute(process, request).retval;

    case SyscallClass::kControl:
      switch (request.sysno) {
        case Sysno::kMveeSelfAware:
          return variant;
        case Sysno::kClone:
          return control_retval_;
        default:
          return 0;
      }
  }
  return -1;
}

int64_t ThreadSetMonitor::RunSyscallLoose(uint32_t variant, SyscallRequest& request,
                                          std::vector<int32_t>* delivered_signals) {
  const SyscallClass klass = ClassOf(request.sysno);
  DivergenceReporter* reporter = shared_->reporter;
  if (reporter->tripped()) {
    throw VariantKilled{};
  }

  if (variant == 0) {
    // Leader: execute immediately, deposit the record, never wait for the
    // followers (except for ring backpressure).
    if (request.sysno == Sysno::kClone) {
      control_retval_ = shared_->next_tid.fetch_add(1, std::memory_order_relaxed);
    }
    {
      std::lock_guard<std::mutex> counters_lock(shared_->counters_mutex);
      shared_->counters.Count(klass);
    }
    auto record = std::make_shared<LooseRecord>();
    record->sysno = request.sysno;
    record->digest = request.ComparableDigest();
    record->control_retval = control_retval_;
    // The leader's delivery point becomes everyone's: followers replay the
    // handler at the same record index.
    RouteSignals(request, &record->signals);
    if (delivered_signals != nullptr) {
      *delivered_signals = record->signals;
    }
    record->result = ExecuteMaster(request, klass);
    const int64_t retval =
        klass == SyscallClass::kControl ? record->control_retval : record->result.retval;
    SpinWait waiter;
    while (!loose_ring_->TryPush(record)) {
      if (reporter->tripped()) {
        throw VariantKilled{};
      }
      waiter.Pause();
    }
    if (request.sysno == Sysno::kMveeSelfAware) {
      return 0;
    }
    return retval;
  }

  // Follower: consume the leader's next record for this thread set and
  // verify it matches this variant's call — asynchronously, possibly long
  // after the leader performed it.
  const size_t consumer = variant - 1;
  std::shared_ptr<LooseRecord> record;
  SpinWait waiter;
  DeadlineGate deadline(shared_->options->rendezvous_timeout);
  while (!loose_ring_->Peek(consumer, 0, &record)) {
    if (reporter->tripped()) {
      throw VariantKilled{};
    }
    if (deadline.Expired(waiter)) {
      reporter->Report(StatusCode::kTimeout,
                       "thread " + std::to_string(tid_) +
                           ": loose follower starved waiting for leader record");
      throw VariantKilled{};
    }
    waiter.Pause();
  }
  loose_ring_->Advance(consumer);
  if (delivered_signals != nullptr) {
    *delivered_signals = record->signals;
  }

  if (record->sysno != request.sysno) {
    reporter->Report(StatusCode::kDivergence,
                     "thread " + std::to_string(tid_) + ": loose-mode syscall mismatch: leader " +
                         SysnoName(record->sysno) + " vs follower " + request.ToString());
    throw VariantKilled{};
  }
  if (MustCompare(request) && record->digest != request.ComparableDigest()) {
    reporter->Report(StatusCode::kDivergence,
                     "thread " + std::to_string(tid_) +
                         ": loose-mode argument mismatch on " + request.ToString());
    throw VariantKilled{};
  }
  if (klass == SyscallClass::kControl) {
    // Handle control calls from the record directly: control_retval_ is
    // leader-thread state and must not be written concurrently.
    switch (request.sysno) {
      case Sysno::kMveeSelfAware:
        return variant;
      case Sysno::kClone:
        return record->control_retval;
      default:
        return 0;
    }
  }
  return ExecuteSlave(variant, request, klass, record->result);
}

int64_t ThreadSetMonitor::RunSyscall(uint32_t variant, SyscallRequest& request,
                                     std::vector<int32_t>* delivered_signals) {
  if (shared_->options->sync_model == SyncModel::kLoose) {
    return RunSyscallLoose(variant, request, delivered_signals);
  }
  const SyscallClass klass = ClassOf(request.sysno);
  const uint32_t n = shared_->options->num_variants;
  const auto timeout = shared_->options->rendezvous_timeout;
  DivergenceReporter* reporter = shared_->reporter;

  std::unique_lock<std::mutex> lock(mutex_);

  // Wait for the previous round to fully drain.
  if (!cv_.wait_for(lock, timeout,
                    [&] { return phase_ == Phase::kGather || reporter->tripped(); })) {
    lock.unlock();
    reporter->Report(StatusCode::kTimeout,
                     "thread " + std::to_string(tid_) + ": previous round never drained");
    throw VariantKilled{};
  }
  if (reporter->tripped()) {
    throw VariantKilled{};
  }

  requests_[variant] = &request;
  digests_[variant] = request.ComparableDigest();
  ++arrived_;

  if (arrived_ == n) {
    // Last arriver: compare in lockstep (§2). Divergence kills the MVEE.
    const std::string mismatch = CompareRound();
    if (!mismatch.empty()) {
      lock.unlock();
      reporter->Report(StatusCode::kDivergence, mismatch);
      throw VariantKilled{};
    }
    // Control-call preprocessing shared by all variants.
    if (requests_[0]->sysno == Sysno::kClone) {
      control_retval_ = shared_->next_tid.fetch_add(1, std::memory_order_relaxed);
    }
    // Route signals exactly once per round: a kill enqueues for its target,
    // and anything pending for THIS thread set is latched so every variant
    // delivers at this same syscall boundary.
    RouteSignals(*requests_[0], &round_signals_);
    {
      std::lock_guard<std::mutex> counters_lock(shared_->counters_mutex);
      shared_->counters.Count(klass);
    }
    phase_ = Phase::kExecute;
    cv_.notify_all();
  } else {
    // Lockstep: no variant proceeds until all variants made an equivalent
    // call (§2). A sibling that never arrives (e.g. divergence through an
    // uninstrumented sync op changed its control flow) trips the timeout.
    if (!cv_.wait_for(lock, timeout,
                      [&] { return phase_ == Phase::kExecute || reporter->tripped(); })) {
      std::ostringstream detail;
      detail << "thread " << tid_ << ": lockstep rendezvous timeout at " << request.ToString()
             << " (variant " << variant << ", " << arrived_ << "/" << n << " arrived)";
      lock.unlock();
      reporter->Report(StatusCode::kTimeout, detail.str());
      throw VariantKilled{};
    }
    if (reporter->tripped()) {
      throw VariantKilled{};
    }
  }

  int64_t retval = 0;
  if (variant == 0) {
    lock.unlock();
    SyscallResult result = ExecuteMaster(request, klass);
    lock.lock();
    master_result_ = std::move(result);
    master_done_ = true;
    retval = master_result_.retval;
    cv_.notify_all();
  } else {
    cv_.wait(lock, [&] { return master_done_ || reporter->tripped(); });
    if (reporter->tripped()) {
      throw VariantKilled{};
    }
    // Copy the round's master result so the slave can leave the lock; the
    // round state may be reset by the time the slave finishes.
    const SyscallResult master_copy = master_result_;
    lock.unlock();
    retval = ExecuteSlave(variant, request, klass, master_copy);
    lock.lock();
  }

  // Copy this round's latched signals before the round state resets; the
  // caller delivers them once the rendezvous is fully unwound.
  if (delivered_signals != nullptr) {
    *delivered_signals = round_signals_;
  }

  ++drained_;
  if (drained_ == n) {
    arrived_ = 0;
    drained_ = 0;
    master_done_ = false;
    master_result_ = SyscallResult{};
    round_signals_.clear();
    std::fill(requests_.begin(), requests_.end(), nullptr);
    phase_ = Phase::kGather;
    cv_.notify_all();
  }
  return retval;
}

}  // namespace mvee
