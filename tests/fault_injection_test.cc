// Chaos tests for the robustness layer (docs/DESIGN.md §9,
// docs/fault_injection.md): deterministic fault plans, variant excision with
// graceful degradation, the min_survivors floor, and the blocked-call
// watchdog's escalation ladder.
//
// The sweep philosophy: for every fault site, run a real multithreaded
// workload with a seeded fault plan, and assert that (a) the run completes,
// (b) the survivors' externally visible output is byte-identical to a
// fault-free run (verdict equivalence), and (c) the report names the excised
// victim and the failure site. The whole file runs under both rendezvous
// protocols and both vkernel modes via the CI chaos job's
// MVEE_WAITFREE_RENDEZVOUS / MVEE_SHARDED_VKERNEL sweep.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "mvee/monitor/mvee.h"
#include "mvee/server/http_server.h"
#include "mvee/server/wrk.h"
#include "mvee/sync/primitives.h"
#include "mvee/util/fault_injection.h"

namespace mvee {
namespace {

MveeOptions ChaosOptions(uint32_t variants, const std::string& plan) {
  MveeOptions options;
  options.num_variants = variants;
  options.agent = AgentKind::kWallOfClocks;
  options.on_variant_failure = VariantFailurePolicy::kExcise;
  options.min_survivors = 2;
  options.fault_plan = plan;
  // Short enough that a missing variant is reaped quickly, long enough that
  // healthy rounds never trip on a loaded CI host.
  options.rendezvous_timeout = std::chrono::milliseconds(2000);
  options.agent_config.replay_deadline = std::chrono::milliseconds(20000);
  options.blocked_call_timeout = std::chrono::milliseconds(20000);
  return options;
}

// The chaos workload: `threads` workers increment a shared counter under an
// instrumented mutex (sync-op traffic for the agents) and make periodic
// syscalls (rendezvous traffic); the main thread joins them and writes the
// final count. Deterministic output: any surviving variant set must produce
// byte-identical result.txt, which is the verdict-equivalence oracle.
Program CounterProgram(uint32_t threads, int iters) {
  return [threads, iters](VariantEnv& env) {
    struct Shared {
      Mutex mutex;
      int64_t counter = 0;
    };
    auto shared = std::make_shared<Shared>();
    std::vector<ThreadHandle> workers;
    for (uint32_t t = 0; t < threads; ++t) {
      workers.push_back(env.Spawn([shared, iters](VariantEnv& wenv) {
        for (int i = 0; i < iters; ++i) {
          {
            LockGuard<Mutex> guard(shared->mutex);
            shared->counter += 1;
          }
          if (i % 4 == 0) {
            wenv.SchedYield();
          }
        }
      }));
    }
    for (ThreadHandle& handle : workers) {
      env.Join(handle);
    }
    const int64_t fd =
        env.Open("result.txt", VOpenFlags::kWrite | VOpenFlags::kCreate);
    env.Write(fd, "count=" + std::to_string(shared->counter) + "\n");
    env.Close(fd);
  };
}

std::string FileText(VirtualKernel& kernel, const std::string& path) {
  auto file = kernel.vfs().Open(path, /*create=*/false);
  if (file == nullptr) {
    return "";
  }
  auto bytes = file->Contents();
  return std::string(bytes.begin(), bytes.end());
}

// Reference output of a fault-free run with the same shape.
std::string FaultFreeReference(MveeOptions options, uint32_t threads, int iters) {
  options.fault_plan.clear();
  Mvee mvee(options);
  const Status status = mvee.Run(CounterProgram(threads, iters));
  EXPECT_TRUE(status.ok()) << "fault-free reference failed: " << status.ToString();
  return FileText(mvee.kernel(), "result.txt");
}

// --- Plan parsing ------------------------------------------------------------

TEST(FaultPlanTest, ParsesEntries) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(
      FaultPlan::Parse("crash@2:5;stall@*:3:250;drop-futex-wake:1", &plan, &error))
      << error;
  ASSERT_EQ(plan.entries.size(), 3u);
  EXPECT_EQ(plan.entries[0].site, FaultSite::kCrashAtSyscall);
  EXPECT_EQ(plan.entries[0].variant, 2u);
  EXPECT_EQ(plan.entries[0].nth, 5u);
  EXPECT_EQ(plan.entries[1].site, FaultSite::kStallArrival);
  EXPECT_EQ(plan.entries[1].variant, kFaultSeededVariant);
  EXPECT_EQ(plan.entries[1].param, 250u);
  EXPECT_EQ(plan.entries[2].site, FaultSite::kDropFutexWake);
  EXPECT_EQ(plan.entries[2].variant, kFaultAnyVariant);
}

TEST(FaultPlanTest, RejectsMalformedPlans) {
  FaultPlan plan;
  std::string error;
  EXPECT_FALSE(FaultPlan::Parse("explode@1:1", &plan, &error));
  EXPECT_FALSE(FaultPlan::Parse("crash", &plan, &error));
  EXPECT_FALSE(FaultPlan::Parse("crash@1:zero", &plan, &error));
}

TEST(FaultPlanTest, BadPlanFailsTheRunUpFront) {
  MveeOptions options = ChaosOptions(2, "no-such-site:1");
  Mvee mvee(options);
  const Status status = mvee.Run([](VariantEnv& env) { env.Gettid(); });
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(FaultInjectorTest, SeededVictimIsNeverTheMaster) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::Parse("crash@*:1", &plan, &error)) << error;
  for (uint64_t seed = 0; seed < 64; ++seed) {
    FaultInjector injector;
    ASSERT_TRUE(injector.Arm(plan, /*num_variants=*/4, seed));
    const uint32_t victim = injector.ResolvedVictim(FaultSite::kCrashAtSyscall);
    EXPECT_GE(victim, 1u);
    EXPECT_LT(victim, 4u);
  }
}

TEST(FaultInjectorTest, FiresOnTheNthEligibleEventOnly) {
  FaultPlan plan;
  std::string error;
  ASSERT_TRUE(FaultPlan::Parse("stall@1:3:99", &plan, &error)) << error;
  FaultInjector injector;
  ASSERT_TRUE(injector.Arm(plan, /*num_variants=*/2, /*seed=*/7));
  uint64_t param = 0;
  // Variant 0 events are ineligible and must not advance the count.
  EXPECT_FALSE(injector.ShouldFire(FaultSite::kStallArrival, 0, &param));
  EXPECT_FALSE(injector.ShouldFire(FaultSite::kStallArrival, 1, &param));
  EXPECT_FALSE(injector.ShouldFire(FaultSite::kStallArrival, 1, &param));
  EXPECT_TRUE(injector.ShouldFire(FaultSite::kStallArrival, 1, &param));
  EXPECT_EQ(param, 99u);
  EXPECT_FALSE(injector.ShouldFire(FaultSite::kStallArrival, 1, &param));
  EXPECT_EQ(injector.FiredCount(FaultSite::kStallArrival), 1u);
  injector.Disarm();
  EXPECT_FALSE(injector.ShouldFire(FaultSite::kStallArrival, 1, &param));
}

// --- Excision sweep ----------------------------------------------------------

struct ChaosCase {
  const char* plan;
  FaultSite site;
  StatusCode expected_code;
};

void RunExcisionCase(uint32_t variants, AgentKind agent, bool waitfree,
                     const ChaosCase& chaos) {
  constexpr uint32_t kThreads = 3;
  constexpr int kIters = 40;
  MveeOptions options = ChaosOptions(variants, chaos.plan);
  options.agent = agent;
  options.waitfree_rendezvous = waitfree;
  const std::string reference = FaultFreeReference(options, kThreads, kIters);
  ASSERT_FALSE(reference.empty());

  Mvee mvee(options);
  const Status status = mvee.Run(CounterProgram(kThreads, kIters));
  const std::string label = std::string(AgentKindName(agent)) + "/" +
                            (waitfree ? "slab" : "mutex") + "/" + chaos.plan;
  ASSERT_TRUE(status.ok()) << label << ": " << status.ToString();

  // Graceful degradation: the survivors produced verdict-equivalent output.
  EXPECT_EQ(FileText(mvee.kernel(), "result.txt"), reference) << label;

  // The report names the victim and the failure site.
  const auto& excised = mvee.report().excised_variants;
  ASSERT_EQ(excised.size(), 1u) << label;
  EXPECT_EQ(excised[0].variant, 2u) << label;
  EXPECT_EQ(excised[0].code, chaos.expected_code) << label;
  EXPECT_FALSE(excised[0].detail.empty()) << label;
}

// Kill a variant thread mid-round under every agent kind and both rendezvous
// protocols: the siblings reap it through the rendezvous timeout and the
// survivors finish.
TEST(ChaosSweepTest, CrashedVariantIsExcisedUnderEveryAgentAndProtocol) {
  const ChaosCase chaos{"crash@2:6", FaultSite::kCrashAtSyscall, StatusCode::kTimeout};
  for (AgentKind agent : {AgentKind::kTotalOrder, AgentKind::kPartialOrder,
                          AgentKind::kWallOfClocks, AgentKind::kPerVariableOrder}) {
    for (bool waitfree : {true, false}) {
      RunExcisionCase(/*variants=*/3, agent, waitfree, chaos);
    }
  }
}

// A thread stalled through the arrival window looks exactly like a crash to
// the siblings (it never arrives); when it finally wakes it must observe its
// own excision and unwind instead of corrupting a recycled round.
TEST(ChaosSweepTest, StalledVariantIsExcisedUnderBothProtocols) {
  // Default stall length = 2x rendezvous_timeout, so the siblings' deadline
  // always expires first.
  const ChaosCase chaos{"stall@2:5", FaultSite::kStallArrival, StatusCode::kTimeout};
  for (bool waitfree : {true, false}) {
    RunExcisionCase(/*variants=*/3, AgentKind::kWallOfClocks, waitfree, chaos);
  }
}

// A corrupted digest is a single-outlier divergence: excised immediately at
// round open, no timeout involved.
TEST(ChaosSweepTest, DigestOutlierIsExcisedUnderEveryAgentAndProtocol) {
  const ChaosCase chaos{"digest@2:7", FaultSite::kCorruptDigest, StatusCode::kDivergence};
  for (AgentKind agent : {AgentKind::kTotalOrder, AgentKind::kPartialOrder,
                          AgentKind::kWallOfClocks, AgentKind::kPerVariableOrder}) {
    for (bool waitfree : {true, false}) {
      RunExcisionCase(/*variants=*/3, agent, waitfree, chaos);
    }
  }
}

// Four variants degrade to three and keep the N-1 lockstep guarantees.
TEST(ChaosSweepTest, FourVariantsDegradeToThree) {
  for (const ChaosCase& chaos :
       {ChaosCase{"crash@2:6", FaultSite::kCrashAtSyscall, StatusCode::kTimeout},
        ChaosCase{"digest@2:7", FaultSite::kCorruptDigest, StatusCode::kDivergence}}) {
    RunExcisionCase(/*variants=*/4, AgentKind::kTotalOrder,
                    /*waitfree=*/true, chaos);
  }
}

// Seeded victim selection: '*' picks a slave, and the excision report names
// whichever variant the seed resolved.
TEST(ChaosSweepTest, SeededVictimIsExcisedAndNamed) {
  constexpr uint32_t kThreads = 2;
  constexpr int kIters = 30;
  MveeOptions options = ChaosOptions(3, "digest@*:5");
  options.seed = 0xC0FFEEull;
  const std::string reference = FaultFreeReference(options, kThreads, kIters);

  Mvee mvee(options);
  const Status status = mvee.Run(CounterProgram(kThreads, kIters));
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(FileText(mvee.kernel(), "result.txt"), reference);
  const auto& excised = mvee.report().excised_variants;
  ASSERT_EQ(excised.size(), 1u);
  EXPECT_GE(excised[0].variant, 1u);
  EXPECT_LT(excised[0].variant, 3u);
}

// --- Policy boundaries -------------------------------------------------------

// Below the min_survivors floor the same failure degrades to the classic
// whole-MVEE shutdown with the seed's status codes.
TEST(ChaosPolicyTest, MinSurvivorsFloorForcesShutdown) {
  MveeOptions options = ChaosOptions(2, "crash@1:6");
  options.rendezvous_timeout = std::chrono::milliseconds(400);
  Mvee mvee(options);
  const Status status = mvee.Run(CounterProgram(2, 40));
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kTimeout) << status.ToString();
  EXPECT_TRUE(mvee.report().excised_variants.empty());
}

// The master is never excisable, whatever the policy says.
TEST(ChaosPolicyTest, MasterFailureForcesShutdown) {
  MveeOptions options = ChaosOptions(3, "digest@0:7");
  Mvee mvee(options);
  const Status status = mvee.Run(CounterProgram(2, 40));
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDivergence) << status.ToString();
  EXPECT_TRUE(mvee.report().excised_variants.empty());
}

// Under kShutdown (the paper's posture, the default) a slave failure is
// fatal — the robustness layer must not change the default behavior.
TEST(ChaosPolicyTest, ShutdownPolicyStaysFatal) {
  MveeOptions options = ChaosOptions(3, "digest@2:7");
  options.on_variant_failure = VariantFailurePolicy::kShutdown;
  Mvee mvee(options);
  const Status status = mvee.Run(CounterProgram(2, 40));
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDivergence) << status.ToString();
  EXPECT_TRUE(mvee.report().excised_variants.empty());
}

// --- Kernel fault sites + watchdog -------------------------------------------

// A dropped futex wake is the classic lost-wakeup hang: the waiter stays
// queued with nothing left to wake it. The watchdog's stage-2 nudge (a legal
// spurious WakeAll) recovers the run without excising anyone.
TEST(WatchdogTest, DroppedFutexWakeIsRecoveredByNudge) {
  MveeOptions options = ChaosOptions(2, "drop-futex-wake:1");
  options.blocked_call_timeout = std::chrono::milliseconds(250);
  Mvee mvee(options);
  const Status status = mvee.Run([](VariantEnv& env) {
    auto word = std::make_shared<std::atomic<int32_t>>(0);
    ThreadHandle waker = env.Spawn([word](VariantEnv& wenv) {
      wenv.NanosleepNanos(50'000'000);  // let the waiter park first
      word->store(1, std::memory_order_release);
      wenv.FutexWake(word.get(), 1);  // swallowed by the fault
    });
    env.FutexWait(word.get(), 0);  // blocks until the watchdog nudge
    env.Join(waker);
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(mvee.report().excised_variants.empty());
  EXPECT_GE(mvee.report().watchdog_nudges, 1u);
  EXPECT_GE(mvee.report().watchdog_dumps, 1u);
}

// A dropped wait-queue notify self-heals: readiness waiters re-scan on a
// bounded slice precisely so a missed edge degrades to polling latency, not
// a hang. The watchdog never needs to fire.
TEST(WatchdogTest, DroppedWaitqNotifySelfHeals) {
  MveeOptions options = ChaosOptions(2, "drop-waitq-wake:1");
  options.sharded_vkernel = true;  // wait queues only exist sharded
  Mvee mvee(options);
  const Status status = mvee.Run([](VariantEnv& env) {
    auto [read_fd, write_fd] = env.Pipe();
    ASSERT_GE(read_fd, 0);
    ThreadHandle writer = env.Spawn([write_fd](VariantEnv& wenv) {
      wenv.NanosleepNanos(20'000'000);
      wenv.Write(write_fd, std::string("ping"));
    });
    std::vector<uint8_t> buf(4);
    const int64_t n = env.Read(read_fd, buf);  // blocks across the dropped notify
    EXPECT_EQ(n, 4);
    env.Join(writer);
    env.Close(read_fd);
    env.Close(write_fd);
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(mvee.report().excised_variants.empty());
}

// A leaked reader lease wedges the eventual Close in its reader drain; the
// watchdog's nudge releases abandoned leases and the close completes.
TEST(WatchdogTest, LeakedFdLeaseIsRepairedByNudge) {
  MveeOptions options = ChaosOptions(2, "leak-fd-lease:1");
  options.sharded_vkernel = true;  // leases only exist sharded
  options.blocked_call_timeout = std::chrono::milliseconds(250);
  Mvee mvee(options);
  const Status status = mvee.Run([](VariantEnv& env) {
    const int64_t fd =
        env.Open("leaky.txt", VOpenFlags::kWrite | VOpenFlags::kCreate);
    ASSERT_GE(fd, 0);
    env.Write(fd, std::string("abcd"));
    env.Lseek(fd, 0, 0);
    std::vector<uint8_t> buf(4);
    EXPECT_EQ(env.Read(fd, buf), 4);  // the lease on this read is leaked
    EXPECT_EQ(env.Close(fd), 0);      // wedges until the nudge repairs it
    env.Gettid();
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_GE(mvee.report().watchdog_nudges, 1u);
}

// --- Loose (VARAN) mode ------------------------------------------------------

// A stalled loose-mode follower back-pressures the leader through the ring;
// the leader's deadline names the laggard and excises it, and its detached
// cursor stops gating pushes.
TEST(LooseModeChaosTest, StalledFollowerIsExcised) {
  MveeOptions options = ChaosOptions(3, "stall@2:4:3000");
  options.sync_model = SyncModel::kLoose;
  options.loose_buffer_depth = 4;  // small ring: backpressure bites quickly
  options.rendezvous_timeout = std::chrono::milliseconds(500);
  Mvee mvee(options);
  const Status status = mvee.Run([](VariantEnv& env) {
    for (int i = 0; i < 24; ++i) {
      env.Gettid();
    }
    const int64_t fd =
        env.Open("loose.txt", VOpenFlags::kWrite | VOpenFlags::kCreate);
    env.Write(fd, std::string("done"));
    env.Close(fd);
  });
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(FileText(mvee.kernel(), "loose.txt"), "done");
  const auto& excised = mvee.report().excised_variants;
  ASSERT_EQ(excised.size(), 1u);
  EXPECT_EQ(excised[0].variant, 2u);
  EXPECT_EQ(excised[0].code, StatusCode::kTimeout);
}

// A delayed ring publication is absorbed by the followers' deadline.
TEST(LooseModeChaosTest, DelayedPublishIsAbsorbed) {
  MveeOptions options = ChaosOptions(2, "delay-publish@0:3:30");
  options.sync_model = SyncModel::kLoose;
  Mvee mvee(options);
  const Status status = mvee.Run([](VariantEnv& env) {
    for (int i = 0; i < 8; ++i) {
      env.Gettid();
    }
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_TRUE(mvee.report().excised_variants.empty());
}

// --- Post-excision liveness --------------------------------------------------

// After an excision the survivors must keep full service: new threads spawn,
// futexes block and wake, the dead variant's thread sets never wedge a
// round. This is the "graceful" half of graceful degradation.
TEST(ChaosLivenessTest, SurvivorsSpawnThreadsAfterExcision) {
  MveeOptions options = ChaosOptions(3, "crash@2:4");
  const std::string reference = [&] {
    MveeOptions clean = options;
    clean.fault_plan.clear();
    Mvee mvee(clean);
    EXPECT_TRUE(mvee.Run(CounterProgram(2, 20)).ok());
    return FileText(mvee.kernel(), "result.txt");
  }();

  Mvee mvee(options);
  const Status status = mvee.Run([](VariantEnv& env) {
    // Phase 1: enough syscalls that the victim dies here.
    for (int i = 0; i < 8; ++i) {
      env.Gettid();
    }
    // Phase 2: full workload started after the excision window.
    CounterProgram(2, 20)(env);
  });
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(FileText(mvee.kernel(), "result.txt"), reference);
  ASSERT_EQ(mvee.report().excised_variants.size(), 1u);
  EXPECT_EQ(mvee.report().excised_variants[0].variant, 2u);
  // The excision latency probe measured excise-to-next-round-open.
  EXPECT_GT(mvee.report().excision_latency_ns, 0u);
}

// --- Excision under server traffic (docs/DESIGN.md §10) ----------------------

// A variant dies mid-traffic under the event-loop server; the survivors must
// finish the whole open-loop run with byte-identical responses (every sent
// response passed the survivors' lockstep send() comparison; the request ids
// prove nothing was dropped or doubled) and the report must name the victim.
TEST(ChaosServerTest, ServerSurvivesVariantExcisionMidTraffic) {
  constexpr uint16_t kPort = 8300;
  constexpr uint32_t kConnections = 12;
  constexpr uint32_t kRequestsPerConn = 5;

  // digest@2:45 corrupts variant 2's 45th syscall digest — startup (socket/
  // bind/listen/pipes/spawns) takes ~15 calls, so the divergence lands while
  // connections are in flight.
  MveeOptions options = ChaosOptions(3, "digest@2:45");
  options.rendezvous_timeout = std::chrono::milliseconds(20000);
  options.agent_config.replay_deadline = std::chrono::milliseconds(60000);
  options.blocked_call_timeout = std::chrono::milliseconds(60000);

  ServerConfig config;
  config.port = kPort;
  config.pool_threads = 4;
  config.page_bytes = 256;
  config.use_event_loop = true;
  config.connection_budget = kConnections + 1;  // + readiness probe.

  OpenLoopOptions load;
  load.port = kPort;
  load.connections = kConnections;
  load.requests_per_conn = kRequestsPerConn;
  load.pipeline_depth = 2;
  load.arrival_rate = 4000.0;
  load.client_threads = 2;
  load.collect_request_ids = true;

  const auto serve_and_measure = [&](Mvee& mvee, OpenLoopResult* result) {
    Status status;
    std::thread client([&] {
      VRef<VConnection> probe;
      while ((probe = mvee.kernel().network().Connect(kPort)) == nullptr) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      probe->CloseClientSide();
      *result = RunWrkOpenLoop(mvee.kernel(), load);
    });
    status = mvee.Run(MakeServerProgram(config));
    client.join();
    return status;
  };

  // Fault-free reference: the survivors' stats must match it byte for byte.
  std::string reference_stats;
  {
    MveeOptions clean = options;
    clean.fault_plan.clear();
    Mvee mvee(clean);
    OpenLoopResult result;
    ASSERT_TRUE(serve_and_measure(mvee, &result).ok());
    reference_stats = FileText(mvee.kernel(), "result/http_stats");
    ASSERT_FALSE(reference_stats.empty());
  }

  Mvee mvee(options);
  OpenLoopResult result;
  const Status status = serve_and_measure(mvee, &result);
  ASSERT_TRUE(status.ok()) << status.ToString();

  // The load run finished completely despite the mid-traffic excision.
  EXPECT_EQ(result.responses_ok, kConnections * kRequestsPerConn);
  EXPECT_EQ(result.responses_non2xx, 0u);
  EXPECT_EQ(result.responses_truncated, 0u);
  std::vector<uint64_t> ids = result.request_ids;
  std::sort(ids.begin(), ids.end());
  ASSERT_EQ(ids.size(), static_cast<size_t>(kConnections) * kRequestsPerConn);
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], i + 1) << "request ids are not a permutation of 1..N";
  }

  // Survivors' externally visible accounting matches the fault-free run.
  EXPECT_EQ(FileText(mvee.kernel(), "result/http_stats"), reference_stats);

  // The report names the victim and the failure site.
  const auto& excised = mvee.report().excised_variants;
  ASSERT_EQ(excised.size(), 1u);
  EXPECT_EQ(excised[0].variant, 2u);
  EXPECT_EQ(excised[0].code, StatusCode::kDivergence);
  EXPECT_FALSE(excised[0].detail.empty());
}

}  // namespace
}  // namespace mvee
