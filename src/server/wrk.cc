#include "mvee/server/wrk.h"

#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "mvee/server/http_server.h"

namespace mvee {

namespace {

// One HTTP/1.0 exchange over the virtual network. Returns the response or
// empty on failure.
std::string DoRequest(VirtualKernel& kernel, uint16_t port, const std::string& request) {
  auto conn = kernel.network().Connect(port);
  if (conn == nullptr) {
    return "";
  }
  if (conn->ClientWrite(reinterpret_cast<const uint8_t*>(request.data()), request.size()) < 0) {
    conn->CloseClientSide();
    return "";
  }
  std::string response;
  uint8_t buffer[1024];
  for (;;) {
    const int64_t n = conn->ClientRead(buffer, sizeof(buffer));
    if (n <= 0) {
      break;
    }
    response.append(reinterpret_cast<const char*>(buffer), static_cast<size_t>(n));
  }
  conn->CloseClientSide();
  return response;
}

}  // namespace

WrkResult RunWrk(VirtualKernel& kernel, const WrkOptions& options) {
  WrkResult result;
  result.requests_attempted =
      static_cast<uint64_t>(options.connections) * options.requests_per_conn;

  std::atomic<uint64_t> ok{0};
  std::atomic<uint64_t> bytes{0};
  const auto start = std::chrono::steady_clock::now();

  std::vector<std::thread> clients;
  for (uint32_t c = 0; c < options.connections; ++c) {
    clients.emplace_back([&, c] {
      (void)c;
      const std::string request = "GET " + options.path + " HTTP/1.0\r\n\r\n";
      for (uint32_t r = 0; r < options.requests_per_conn; ++r) {
        const std::string response = DoRequest(kernel, options.port, request);
        if (response.rfind("HTTP/1.0 200", 0) == 0) {
          ok.fetch_add(1, std::memory_order_relaxed);
          bytes.fetch_add(response.size(), std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& client : clients) {
    client.join();
  }

  const auto end = std::chrono::steady_clock::now();
  result.responses_ok = ok.load();
  result.bytes_received = bytes.load();
  result.seconds = std::chrono::duration_cast<std::chrono::duration<double>>(end - start).count();
  return result;
}

AttackResult RunAttack(VirtualKernel& kernel, uint16_t port, uint64_t victim_map_base) {
  AttackResult result;
  // Exploit layout: 64 filler bytes overflowing into the 8-byte selector.
  std::string payload(64, 'A');
  const uint64_t token = LayoutToken(victim_map_base);
  payload.append(reinterpret_cast<const char*>(&token), sizeof(token));

  std::string request = "GET /vuln HTTP/1.0\r\nContent-Length: " +
                        std::to_string(payload.size()) + "\r\n\r\n" + payload;
  const std::string response = DoRequest(kernel, port, request);
  result.connected = !response.empty();
  const size_t body_start = response.find("\r\n\r\n");
  if (body_start != std::string::npos) {
    result.response_body = response.substr(body_start + 4);
  }
  result.secret_leaked = result.response_body.find(ServerSecret()) != std::string::npos;
  return result;
}

}  // namespace mvee
