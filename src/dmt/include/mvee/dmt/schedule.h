// Schedules and schedule comparison for the DMT-vs-R+R study.
//
// A schedule is what one "variant" of an abstract program did: the global
// order of synchronization events, the stream of MVEE-visible syscalls, and
// a virtual makespan. Comparing two variants' schedules is the abstract
// version of what the MVEE monitor does at its rendezvous points: syscall
// streams are compared per logical thread (each carries an observation
// digest standing in for its arguments), so two variants "diverge" exactly
// when some thread observed a different interleaving — the benign divergence
// of paper §1/§3.1.

#ifndef MVEE_DMT_SCHEDULE_H_
#define MVEE_DMT_SCHEDULE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "mvee/dmt/program.h"

namespace mvee::dmt {

// One synchronization event in global order.
struct SyncEvent {
  uint32_t tid = 0;
  uint32_t var = 0;
  OpKind kind = OpKind::kLock;  // kLock, kUnlock, kSetFlag, or kWaitFlag.

  friend bool operator==(const SyncEvent&, const SyncEvent&) = default;
};

// One MVEE-visible syscall. `digest` plays the role of the call's arguments:
// it hashes everything the calling thread has observed through synchronization
// so far (which acquisition of each lock it got, which flag versions it saw).
// If two variants' threads interleave differently, their digests differ and a
// lockstep monitor would flag divergence on the first affected call.
struct SyscallEvent {
  uint32_t tid = 0;
  uint64_t digest = 0;

  friend bool operator==(const SyscallEvent&, const SyscallEvent&) = default;
};

struct Schedule {
  std::vector<SyncEvent> sync_order;       // Global sync-op order.
  std::vector<SyscallEvent> syscall_order; // Global syscall order.
  uint64_t makespan = 0;                   // Virtual cycles (scheduler-defined model).
  bool completed = true;                   // false: deadlock/livelock detected.
  std::string failure;                     // Diagnostic when !completed.
};

// Per-variable acquisition orders: result[v] is the sequence of tids that
// acquired lock v, in order. This is the object the paper's agents replicate.
std::vector<std::vector<uint32_t>> PerVariableOrders(const Schedule& schedule,
                                                     uint32_t lock_count);

// Outcome of comparing two variants' schedules the way an MVEE would.
struct ScheduleDivergence {
  bool diverged = false;
  // Index (into the per-thread syscall stream) of the first mismatching
  // syscall, and the thread it happened on. Meaningful only if diverged.
  uint32_t first_tid = 0;
  size_t first_index = 0;
  // Fraction of per-variable acquisition positions that differ (0 = schedules
  // identical, 1 = nothing lines up). A scalar "how benignly divergent".
  double mismatch_fraction = 0.0;
};

// Compares per-thread syscall digest streams (the monitor's view) and
// per-variable acquisition orders (the agents' view). `lock_count` must
// cover both schedules.
ScheduleDivergence CompareSchedules(const Schedule& a, const Schedule& b,
                                    uint32_t thread_count, uint32_t lock_count);

}  // namespace mvee::dmt

#endif  // MVEE_DMT_SCHEDULE_H_
