// Record/Replay in the abstract scheduler world — the paper's chosen
// alternative to DMT (§2.1 second alternative, §3).
//
// RecordMaster runs the program under the (nondeterministic) OS scheduler
// and keeps the resulting schedule as the master recording. ReplayScheduler
// then executes any cost-perturbed variant of the same program while
// enforcing the recorded per-variable acquisition order and per-flag store
// order — exactly what the sync agents do with their sync buffers (§3.2).
// Because the enforcement keys on *logical* variables and positions rather
// than on thread progress, the replayed schedule's MVEE-visible behaviour
// matches the master's for any cost perturbation: R+R is diversity-immune
// where DMT is not.

#ifndef MVEE_DMT_REPLAY_H_
#define MVEE_DMT_REPLAY_H_

#include <cstdint>

#include "mvee/dmt/program.h"
#include "mvee/dmt/schedule.h"
#include "mvee/dmt/scheduler.h"

namespace mvee::dmt {

// Records a master schedule with an OsScheduler seeded by `seed`.
Schedule RecordMaster(const Program& program, uint64_t seed, uint64_t slice = 128);

// Replays `recording` on (a possibly cost-perturbed copy of) the same
// program. The replayer is itself driven by a different seeded interleaver
// (`scheduler_seed`) to demonstrate that enforcement, not scheduling luck,
// reproduces the order: any thread about to perform a sync op that is not
// next in the recorded per-variable order is stalled, like a slave variant
// thread suspended by its agent (§3.2).
class ReplayScheduler final : public Scheduler {
 public:
  ReplayScheduler(const Schedule& recording, uint32_t lock_count, uint32_t flag_count,
                  uint64_t scheduler_seed, const OpCosts& costs = {});

  Schedule Run(const Program& program) override;
  const char* name() const override { return "rr-replay"; }

  // Replay stalls encountered (slave threads suspended waiting their turn) —
  // the replay-cost counter the agents' stats expose.
  uint64_t stalls() const { return stalls_; }

 private:
  std::vector<std::vector<uint32_t>> lock_order_;  // Per lock: recorded tid sequence.
  std::vector<std::vector<uint32_t>> flag_order_;  // Per flag: recorded setter sequence.
  uint64_t scheduler_seed_;
  OpCosts costs_;
  uint64_t stalls_ = 0;
};

}  // namespace mvee::dmt

#endif  // MVEE_DMT_REPLAY_H_
