// Runs one of the PARSEC/SPLASH benchmark stand-ins natively and under the
// MVEE with each synchronization agent, printing the relative overheads —
// a single-benchmark slice of the paper's Figure 5.
//
//   $ ./parsec_under_mvee [benchmark] [scale]
//   $ ./parsec_under_mvee fluidanimate 0.05

#include <cstdio>
#include <cstdlib>

#include "mvee/monitor/mvee.h"
#include "mvee/monitor/native.h"
#include "mvee/util/log.h"
#include "mvee/workloads/workload.h"

using namespace mvee;

int main(int argc, char** argv) {
  SetLogLevel(LogLevel::kError);

  const std::string name = argc > 1 ? argv[1] : "streamcluster";
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.05;

  const WorkloadConfig* config = FindWorkload(name);
  if (config == nullptr) {
    std::printf("unknown benchmark '%s'; available:\n", name.c_str());
    for (const auto& workload : AllWorkloads()) {
      std::printf("  %s/%s\n", workload.suite, workload.name);
    }
    return 1;
  }
  std::printf("%s/%s (%s shape), scale %.3f, %u worker threads\n", config->suite,
              config->name, WorkloadShapeName(config->shape), scale, config->worker_threads);

  // Native baseline.
  double native_seconds = 0;
  {
    NativeRunner runner;
    const auto start = std::chrono::steady_clock::now();
    runner.Run(MakeWorkloadProgram(*config, scale));
    native_seconds = std::chrono::duration_cast<std::chrono::duration<double>>(
                         std::chrono::steady_clock::now() - start)
                         .count();
    std::printf("native: %.3fs (%lu syscalls)\n", native_seconds,
                (unsigned long)runner.counters().total);
  }

  // Two variants under each agent.
  for (AgentKind agent : {AgentKind::kTotalOrder, AgentKind::kPartialOrder,
                          AgentKind::kWallOfClocks}) {
    MveeOptions options;
    options.num_variants = 2;
    options.agent = agent;
    options.rendezvous_timeout = std::chrono::milliseconds(120000);
    options.agent_config.replay_deadline = std::chrono::milliseconds(120000);
    Mvee mvee(options);
    const Status status = mvee.Run(MakeWorkloadProgram(*config, scale));
    if (!status.ok()) {
      std::printf("%-15s FAILED: %s\n", AgentKindName(agent), status.ToString().c_str());
      continue;
    }
    const MveeReport& report = mvee.report();
    std::printf("%-15s %.3fs (%.2fx native), %lu sync ops, %lu replay stalls\n",
                AgentKindName(agent), report.wall_seconds,
                native_seconds > 0 ? report.wall_seconds / native_seconds : 0,
                (unsigned long)report.sync_ops_recorded,
                (unsigned long)report.replay_stalls);
  }
  return 0;
}
