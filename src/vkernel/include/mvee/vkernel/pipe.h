// Bounded in-kernel pipe with blocking read/write.
//
// Pipes are only ever operated on by the master variant (reads and writes are
// replicated calls), so real blocking on a condition variable is safe here —
// the monitor does not hold the syscall ordering clock's critical section
// around replicated calls (paper §4.1 Limitations).

#ifndef MVEE_VKERNEL_PIPE_H_
#define MVEE_VKERNEL_PIPE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

namespace mvee {

class VPipe {
 public:
  explicit VPipe(size_t capacity = 65536) : capacity_(capacity) {}

  // Blocks until at least 1 byte is available or the write end closes.
  // Returns bytes read, 0 on EOF.
  int64_t Read(uint8_t* out, uint64_t size);

  // Blocks while the pipe is full. Returns bytes written or -EPIPE if the
  // read end has closed.
  int64_t Write(const uint8_t* data, uint64_t size);

  void CloseWriteEnd();
  void CloseReadEnd();
  bool write_closed() const;
  size_t BytesBuffered() const;

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable readable_;
  std::condition_variable writable_;
  std::deque<uint8_t> buffer_;
  bool write_closed_ = false;
  bool read_closed_ = false;
};

}  // namespace mvee

#endif  // MVEE_VKERNEL_PIPE_H_
