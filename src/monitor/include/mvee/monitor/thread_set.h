// ThreadSetMonitor: one monitor per set of equivalent variant threads.
//
// ReMon is "a multithreaded monitor ... each of ReMon's threads monitors one
// set of equivalent variant threads" (paper §4). Here the monitor is passive
// (runs on the trapping variant threads themselves, like the decentralized
// designs of §2) but the unit of monitoring is the same: all variants' copies
// of logical thread T rendezvous here on every syscall.
//
// Round protocol:
//   1. gather    — every variant deposits its request; the last arriver
//                  compares the diversity-normalized argument digests
//                  (divergence => MVEE shutdown) and opens the round.
//   2. execute   — class-dependent:
//        kReplicated: master executes against the kernel (may block); the
//                     result + output bytes are published to the slaves,
//                     which apply local side effects only (§4.1).
//        kOrdered:    master executes inside the syscall-ordering critical
//                     section of the resource's ordering domain (or the
//                     global one when sharding is off) and publishes its
//                     Lamport timestamp; each slave spins until its private
//                     clock for that domain matches, executes locally, and
//                     increments the clock (§4.1, docs/syscall_ordering.md).
//        kLocal:      every variant executes locally, unordered.
//        kControl:    handled by the monitor itself (self-aware, clone,
//                     exit) without touching the kernel.
//   3. drain     — the last consumer resets the round.

#ifndef MVEE_MONITOR_THREAD_SET_H_
#define MVEE_MONITOR_THREAD_SET_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "mvee/monitor/options.h"
#include "mvee/monitor/order_domain.h"
#include "mvee/monitor/reporter.h"
#include "mvee/syscall/record.h"
#include "mvee/util/spsc_ring.h"
#include "mvee/vkernel/vkernel.h"

namespace mvee {

// Shared pieces every ThreadSetMonitor needs; owned by Mvee.
struct MonitorShared {
  const MveeOptions* options = nullptr;
  VirtualKernel* kernel = nullptr;
  DivergenceReporter* reporter = nullptr;
  std::vector<ProcessState*> processes;  // per variant

  // Syscall-ordering domains (§4.1, docs/syscall_ordering.md): one
  // timestamp counter + per-variant replay clock per conflicting resource.
  // The global-clock baseline (!options->sharded_order_domains) routes every
  // ordered call through the single kFdNamespace domain — one mutex, one
  // counter, one replay clock per variant, i.e. the seed's cost profile.
  OrderDomainTable* order_domains = nullptr;

  // Logical tid allocator for sys_clone (identical across variants because
  // it is assigned once per rendezvous).
  std::atomic<uint32_t> next_tid{1};

  // Aggregate counters (master-side, one per round).
  SyscallCounters counters;
  std::mutex counters_mutex;

  // Deferred asynchronous signals, keyed by target logical tid. Enqueued by
  // sys_tgkill rendezvous or by Mvee::RaiseSignal (the external-source
  // case); latched into the target thread set's next round so every variant
  // delivers the handler at the same syscall boundary — the way GHUMVEE-
  // style monitors make async signal delivery deterministic.
  std::mutex signal_mutex;
  std::map<uint32_t, std::deque<int32_t>> pending_signals;
};

class ThreadSetMonitor {
 public:
  ThreadSetMonitor(uint32_t tid, MonitorShared* shared);

  // Executes one syscall for (variant, this thread set) under the configured
  // synchronization model. Lockstep blocks until the round completes; loose
  // mode lets the leader run ahead (ring-buffered). Throws VariantKilled on
  // MVEE shutdown. If `delivered_signals` is non-null it receives the
  // signals latched for this round; the caller (Mvee::Trap) runs the
  // variant's handlers for them after the round — the rendezvous *is* the
  // deterministic delivery point.
  int64_t RunSyscall(uint32_t variant, SyscallRequest& request,
                     std::vector<int32_t>* delivered_signals = nullptr);

  // Wakes all parked threads (reporter shutdown hook).
  void NotifyShutdown();

  // One-line state snapshot ("tid=3 phase=exec arrived=2/2 master_done=1
  // last=sys_futex") for hang diagnostics.
  std::string DebugString();

  uint32_t tid() const { return tid_; }

 private:
  // Returns true if this request's arguments must be compared under the
  // configured policy.
  bool MustCompare(const SyscallRequest& request) const;

  // Digest comparison for the gathered round (with mutex_ held); returns a
  // non-empty divergence detail on mismatch.
  std::string CompareRound() const;

  // Master-side execution; returns the master's result. Runs unlocked.
  SyscallResult ExecuteMaster(SyscallRequest& request, SyscallClass klass);

  // Slave-side execution from a copied master result. Runs unlocked so that
  // divergence reports never occur while holding mutex_.
  int64_t ExecuteSlave(uint32_t variant, SyscallRequest& request, SyscallClass klass,
                       const SyscallResult& master);

  // The domain the master stamps `request` in: resolved per resource under
  // sharded ordering, always kFdNamespace under the global-clock baseline.
  uint32_t StampDomainOf(ProcessState& process, const SyscallRequest& request);

  // The replay clock a slave must spin on for `master`'s stamped ordering
  // position (the stamped domain's per-variant clock).
  std::atomic<uint64_t>& SlaveClockFor(uint32_t variant, const SyscallResult& master);

  // Spins (DeadlineGate-amortized) until `clock` reaches `want`; reports a
  // timeout/shutdown and throws VariantKilled if it never does. `what`
  // labels the wait in the stall report.
  void AwaitOrderClock(std::atomic<uint64_t>& clock, uint64_t want, uint32_t variant,
                       const SyscallRequest& request, const char* what);

  // VARAN-style loose path: leader deposits records, followers consume and
  // verify asynchronously (§2's reliability-oriented model).
  int64_t RunSyscallLoose(uint32_t variant, SyscallRequest& request,
                          std::vector<int32_t>* delivered_signals);

  // One leader-deposited record in loose mode.
  struct LooseRecord {
    Sysno sysno = Sysno::kExit;
    uint64_t digest = 0;
    int64_t control_retval = 0;
    SyscallResult result;
    std::vector<int32_t> signals;  // Latched at the leader's delivery point.
  };

  // Enqueues a kill's signal (round preprocessing, exactly once) and pops
  // everything pending for this thread set into `out`.
  void RouteSignals(const SyscallRequest& request, std::vector<int32_t>* out);

  const uint32_t tid_;
  MonitorShared* const shared_;

  std::mutex mutex_;
  std::condition_variable cv_;
  enum class Phase { kGather, kExecute, kDone };
  Phase phase_ = Phase::kGather;
  uint32_t arrived_ = 0;
  uint32_t drained_ = 0;
  std::vector<SyscallRequest*> requests_;
  std::vector<uint64_t> digests_;
  SyscallResult master_result_;
  bool master_done_ = false;
  int64_t control_retval_ = 0;  // clone tid etc., shared by all variants
  std::vector<int32_t> round_signals_;  // Signals latched for this round.

  // Loose mode: one ring per thread set; consumer v-1 belongs to variant v.
  std::unique_ptr<BroadcastRing<std::shared_ptr<LooseRecord>>> loose_ring_;
};

}  // namespace mvee

#endif  // MVEE_MONITOR_THREAD_SET_H_
