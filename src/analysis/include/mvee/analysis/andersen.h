// Andersen-style subset-based points-to analysis over MIR.
//
// The paper's second automation attempt used SVF, "an Andersen-style,
// subset-based points-to analysis" (§4.3.1), noting it keeps more precision
// than Steensgaard's unification but is costlier. This is the textbook
// inclusion-constraint solver: a worklist fixpoint over
//
//   AddrOf  p = &x      =>  {x} ⊆ pts(p)
//   Copy    p = q       =>  pts(q) ⊆ pts(p)      (one direction only!)
//   Gep     p = q + c   =>  pts(q) ⊆ pts(p)      (field-insensitive)
//
// The directionality is what distinguishes it from Steensgaard: `p = &x;
// p = &y; q = &y` does NOT force x into pts(q). The analysis bench compares
// the two on precision (spurious type-(iii) marks) and run time.

#ifndef MVEE_ANALYSIS_ANDERSEN_H_
#define MVEE_ANALYSIS_ANDERSEN_H_

#include <cstdint>
#include <set>
#include <vector>

#include "mvee/analysis/mir.h"

namespace mvee {

class AndersenAnalysis {
 public:
  explicit AndersenAnalysis(const MirModule& module);

  // The set of object indices pointer register `reg` may point to.
  const std::set<int32_t>& PointsTo(int32_t reg) const;

  bool MayAlias(int32_t reg_a, int32_t reg_b) const;
  bool MayPointInto(int32_t reg, const std::set<int32_t>& objects) const;

  // Number of worklist iterations the fixpoint took (cost metric).
  uint64_t solver_iterations() const { return solver_iterations_; }

 private:
  std::vector<std::set<int32_t>> points_to_;          // Per register.
  std::vector<std::vector<int32_t>> copy_targets_;    // reg -> regs it flows to.
  uint64_t solver_iterations_ = 0;
  std::set<int32_t> empty_;
};

}  // namespace mvee

#endif  // MVEE_ANALYSIS_ANDERSEN_H_
