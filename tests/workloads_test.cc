// Tests for the synthetic PARSEC / SPLASH workloads: registry sanity, native
// determinism, and cross-variant correctness under the MVEE for every shape
// (the §5.1 "Correctness" sweep at test scale).

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "mvee/monitor/mvee.h"
#include "mvee/monitor/native.h"
#include "mvee/workloads/workload.h"

namespace mvee {
namespace {

std::string ResultOf(VirtualKernel& kernel, const std::string& name) {
  auto file = kernel.vfs().Open("result/" + name, /*create=*/false);
  if (file == nullptr) {
    return "";
  }
  const auto bytes = file->Contents();
  return std::string(bytes.begin(), bytes.end());
}

TEST(WorkloadRegistryTest, Has25Benchmarks) {
  const auto all = AllWorkloads();
  EXPECT_EQ(all.size(), 25u);
  size_t parsec = 0;
  size_t splash = 0;
  for (const auto& config : all) {
    if (std::string(config.suite) == "PARSEC") {
      ++parsec;
    } else if (std::string(config.suite) == "SPLASH") {
      ++splash;
    }
  }
  EXPECT_EQ(parsec, 12u);
  EXPECT_EQ(splash, 13u);
}

TEST(WorkloadRegistryTest, NamesUniquePerSuite) {
  std::set<std::string> seen;
  for (const auto& config : AllWorkloads()) {
    const std::string key = std::string(config.suite) + "/" + config.name;
    EXPECT_TRUE(seen.insert(key).second) << key;
  }
}

TEST(WorkloadRegistryTest, FindByPlainAndQualifiedName) {
  EXPECT_NE(FindWorkload("dedup"), nullptr);
  EXPECT_NE(FindWorkload("SPLASH/raytrace"), nullptr);
  EXPECT_NE(FindWorkload("PARSEC/raytrace"), nullptr);
  EXPECT_STREQ(FindWorkload("SPLASH/raytrace")->suite, "SPLASH");
  EXPECT_EQ(FindWorkload("no_such_benchmark"), nullptr);
}

TEST(WorkloadRegistryTest, PaperReferenceValuesPresent) {
  // Spot-check Table 2 reference data carried in the registry.
  const WorkloadConfig* dedup = FindWorkload("dedup");
  ASSERT_NE(dedup, nullptr);
  EXPECT_NEAR(dedup->paper_syscall_rate_k, 134.27, 1e-9);
  const WorkloadConfig* radiosity = FindWorkload("radiosity");
  ASSERT_NE(radiosity, nullptr);
  EXPECT_NEAR(radiosity->paper_sync_rate_k, 18252.68, 1e-9);
  EXPECT_EQ(dedup->worker_threads, 4u);  // "with four worker threads".
}

TEST(WorkloadNativeTest, DeterministicResultAcrossRuns) {
  // The same workload at the same scale must produce the same digest in two
  // independent native runs — without this, lockstep comparison would be
  // meaningless.
  const WorkloadConfig* config = FindWorkload("fluidanimate");
  ASSERT_NE(config, nullptr);
  std::string first;
  std::string second;
  {
    NativeRunner runner;
    ASSERT_TRUE(runner.Run(MakeWorkloadProgram(*config, 0.01)).ok());
    first = ResultOf(runner.kernel(), config->name);
  }
  {
    NativeRunner runner;
    ASSERT_TRUE(runner.Run(MakeWorkloadProgram(*config, 0.01)).ok());
    second = ResultOf(runner.kernel(), config->name);
  }
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

// One representative benchmark per shape, each run under the MVEE with the
// wall-of-clocks agent and 2 variants: no divergence, and the result digest
// matches a native run (the MVEE is transparent).
class WorkloadMveeTest : public ::testing::TestWithParam<const char*> {};

TEST_P(WorkloadMveeTest, NoDivergenceAndNativeEquivalentResult) {
  const WorkloadConfig* config = FindWorkload(GetParam());
  ASSERT_NE(config, nullptr);
  const double scale = 0.01;

  std::string native_result;
  {
    NativeRunner runner;
    ASSERT_TRUE(runner.Run(MakeWorkloadProgram(*config, scale)).ok());
    native_result = ResultOf(runner.kernel(), config->name);
  }
  ASSERT_FALSE(native_result.empty());

  MveeOptions options;
  options.num_variants = 2;
  options.agent = AgentKind::kWallOfClocks;
  options.rendezvous_timeout = std::chrono::milliseconds(60000);
  options.agent_config.replay_deadline = std::chrono::milliseconds(60000);
  Mvee mvee(options);
  const Status status = mvee.Run(MakeWorkloadProgram(*config, scale));
  EXPECT_TRUE(status.ok()) << config->name << ": " << status.ToString();
  EXPECT_EQ(ResultOf(mvee.kernel(), config->name), native_result) << config->name;
  EXPECT_GT(mvee.report().sync_ops_recorded, 0u);
}

INSTANTIATE_TEST_SUITE_P(OnePerShape, WorkloadMveeTest,
                         ::testing::Values("blackscholes",   // data-parallel
                                           "swaptions",      // atomic-hammer
                                           "dedup",          // pipeline
                                           "radiosity",      // task-queue
                                           "fluidanimate",   // fine-grain grid
                                           "streamcluster"   // barrier-phase
                                           ));

TEST(WorkloadMveeTest, TotalOrderAgentAlsoCorrect) {
  const WorkloadConfig* config = FindWorkload("barnes");
  ASSERT_NE(config, nullptr);
  MveeOptions options;
  options.num_variants = 2;
  options.agent = AgentKind::kTotalOrder;
  options.rendezvous_timeout = std::chrono::milliseconds(60000);
  options.agent_config.replay_deadline = std::chrono::milliseconds(60000);
  Mvee mvee(options);
  EXPECT_TRUE(mvee.Run(MakeWorkloadProgram(*config, 0.005)).ok());
}

TEST(WorkloadMveeTest, PartialOrderAgentAlsoCorrect) {
  const WorkloadConfig* config = FindWorkload("volrend");
  ASSERT_NE(config, nullptr);
  MveeOptions options;
  options.num_variants = 2;
  options.agent = AgentKind::kPartialOrder;
  options.rendezvous_timeout = std::chrono::milliseconds(60000);
  options.agent_config.replay_deadline = std::chrono::milliseconds(60000);
  Mvee mvee(options);
  EXPECT_TRUE(mvee.Run(MakeWorkloadProgram(*config, 0.005)).ok());
}

TEST(WorkloadMveeTest, ThreeVariantsWithAslr) {
  const WorkloadConfig* config = FindWorkload("ferret");
  ASSERT_NE(config, nullptr);
  MveeOptions options;
  options.num_variants = 3;
  options.enable_aslr = true;
  options.agent = AgentKind::kWallOfClocks;
  options.rendezvous_timeout = std::chrono::milliseconds(60000);
  options.agent_config.replay_deadline = std::chrono::milliseconds(60000);
  Mvee mvee(options);
  EXPECT_TRUE(mvee.Run(MakeWorkloadProgram(*config, 0.01)).ok());
}

}  // namespace
}  // namespace mvee
