#include "mvee/server/http_server.h"

#include <deque>
#include <memory>
#include <thread>
#include <vector>

#include "mvee/sync/primitives.h"
#include "mvee/util/hash.h"
#include "mvee/vkernel/vfs.h"

namespace mvee {

void NgxSpinlock::Lock() {
  if (instrumented_) {
    for (;;) {
      int32_t expected = 0;
      if (instrumented_state_.CompareExchange(expected, 1)) {
        return;
      }
      std::this_thread::yield();
    }
  }
  // Stock build: raw compiler atomics, invisible to the sync agent — the
  // §5.5 failure mode.
  for (;;) {
    int32_t expected = 0;
    if (raw_state_.compare_exchange_strong(expected, 1, std::memory_order_acquire)) {
      return;
    }
    std::this_thread::yield();
  }
}

void NgxSpinlock::Unlock() {
  if (instrumented_) {
    instrumented_state_.Store(0);
    return;
  }
  raw_state_.store(0, std::memory_order_release);
}

std::string ServerSecret() { return "SECRET{worker-key-0xdeadbeef-cafebabe}"; }

uint64_t LayoutToken(uint64_t map_base) { return SplitMix64(map_base ^ 0x5eC2e7ULL); }

namespace {

// Connection-fd queue between the dispatcher and the pool. Uses the
// instrumented (pthread-equivalent) primitives — these were never the
// problem in §5.5.
class ConnQueue {
 public:
  void Push(int64_t fd) {
    LockGuard<Mutex> guard(mutex_);
    queue_.push_back(fd);
    available_.Signal();
  }

  // Returns -1 on shutdown (poison pill).
  int64_t Pop() {
    mutex_.Lock();
    while (queue_.empty()) {
      available_.Wait(mutex_);
    }
    const int64_t fd = queue_.front();
    queue_.pop_front();
    mutex_.Unlock();
    return fd;
  }

 private:
  Mutex mutex_;
  CondVar available_;
  std::deque<int64_t> queue_;
};

struct ServerState {
  explicit ServerState(const ServerConfig& config)
      : stats_lock(config.instrument_custom_sync) {}

  ConnQueue connections;
  NgxSpinlock stats_lock;
  ServerStats stats;
};

// Reads one HTTP/1.0 request (until "\r\n\r\n" or connection close).
std::string ReadRequest(VariantEnv& env, int64_t fd) {
  std::string request;
  uint8_t buffer[512];
  while (request.find("\r\n\r\n") == std::string::npos) {
    const int64_t n = env.Recv(fd, buffer);
    if (n <= 0) {
      break;
    }
    request.append(reinterpret_cast<const char*>(buffer), static_cast<size_t>(n));
    if (request.size() > 65536) {
      break;
    }
  }
  return request;
}

std::string RequestPath(const std::string& request) {
  // "GET /path HTTP/1.0"
  const size_t method_end = request.find(' ');
  if (method_end == std::string::npos) {
    return "/";
  }
  const size_t path_end = request.find(' ', method_end + 1);
  if (path_end == std::string::npos) {
    return "/";
  }
  return request.substr(method_end + 1, path_end - method_end - 1);
}

std::string MakeResponse(const std::string& body, uint64_t request_id) {
  std::string response = "HTTP/1.0 200 OK\r\nContent-Length: " +
                         std::to_string(body.size()) +
                         "\r\nX-Request-Id: " + std::to_string(request_id) + "\r\n\r\n";
  response += body;
  return response;
}

// The CVE-2013-2028 stand-in. A request "/vuln" carries a binary payload
// after the headers:
//   [64 filler bytes][8-byte layout token]
// The "stack buffer" is 64 bytes; the token overflows into the response
// selector. A selector matching this variant's own layout token redirects
// the response to the secret (a successful hijack); any other value yields
// a corrupted-but-benign response. An attacker can only tailor the token to
// ONE variant's layout — the others produce different bytes and the MVEE's
// send() comparison catches it (§5.5).
std::string HandleVuln(VariantEnv& env, const std::string& request,
                       const std::string& static_page) {
  const size_t body_start = request.find("\r\n\r\n");
  std::string payload =
      body_start == std::string::npos ? "" : request.substr(body_start + 4);

  char stack_buffer[64];
  uint64_t response_selector = 0;  // "Adjacent" to the buffer on the stack.
  // The bug: memcpy without a length check.
  const size_t n = payload.size();
  for (size_t i = 0; i < n; ++i) {
    if (i < sizeof(stack_buffer)) {
      stack_buffer[i] = payload[i];
    } else if (i - sizeof(stack_buffer) < sizeof(response_selector)) {
      // Overflow: bytes land in the selector (simulated adjacency).
      reinterpret_cast<char*>(&response_selector)[i - sizeof(stack_buffer)] = payload[i];
    }
  }
  (void)stack_buffer;

  if (response_selector == LayoutToken(env.diversity().map_base())) {
    return ServerSecret();  // Control-flow hijack succeeded in this variant.
  }
  if (response_selector != 0) {
    return "corrupted:" + std::to_string(response_selector & 0xffff);
  }
  return static_page;
}

void Worker(std::shared_ptr<ServerState> state, const ServerConfig& config,
            std::string static_page, VariantEnv& env) {
  for (;;) {
    const int64_t fd = state->connections.Pop();
    if (fd < 0) {
      break;  // Poison pill.
    }
    const std::string request = ReadRequest(env, fd);
    const std::string path = RequestPath(request);

    std::string body;
    bool vuln_hit = false;
    if (config.enable_vulnerability && path.rfind("/vuln", 0) == 0) {
      body = HandleVuln(env, request, static_page);
      vuln_hit = true;
    } else {
      body = static_page;
    }

    // Custom-primitive critical section: the request id lands in the
    // response header, so a cross-variant mismatch is externally visible.
    // The yield inside mirrors nginx doing real work under its locks and
    // widens the race window that uninstrumented builds lose on.
    state->stats_lock.Lock();
    const uint64_t request_id = ++state->stats.requests_served;
    std::this_thread::yield();
    state->stats.bytes_sent += body.size();
    if (vuln_hit) {
      ++state->stats.vuln_hits;
    }
    state->stats_lock.Unlock();

    env.Send(fd, MakeResponse(body, request_id));
    env.Close(fd);
  }
}

}  // namespace

Program MakeServerProgram(const ServerConfig& config) {
  return [config](VariantEnv& env) {
    const std::string static_page(config.page_bytes, 'x');
    auto state = std::make_shared<ServerState>(config);

    const int64_t listen_fd = env.Socket();
    env.Bind(listen_fd, config.port);
    if (env.Listen(listen_fd, 128) != 0) {
      return;  // Port in use (another variant run left it open).
    }

    std::vector<ThreadHandle> pool;
    for (uint32_t t = 0; t < config.pool_threads; ++t) {
      pool.push_back(env.Spawn([state, config, static_page](VariantEnv& wenv) {
        Worker(state, config, static_page, wenv);
      }));
    }

    // Dispatcher: accept the configured number of connections, then drain.
    for (uint32_t c = 0; c < config.connection_budget; ++c) {
      const int64_t conn_fd = env.Accept(listen_fd);
      if (conn_fd < 0) {
        break;
      }
      state->connections.Push(conn_fd);
    }
    for (uint32_t t = 0; t < config.pool_threads; ++t) {
      state->connections.Push(-1);
    }
    for (auto handle : pool) {
      env.Join(handle);
    }
    env.Shutdown(listen_fd);
    env.Close(listen_fd);

    // Final stats: lockstep-compared across variants, so any divergence in
    // the served-request accounting is caught here at the latest.
    const std::string stats_line = "requests=" + std::to_string(state->stats.requests_served) +
                                   " bytes=" + std::to_string(state->stats.bytes_sent) +
                                   " vuln=" + std::to_string(state->stats.vuln_hits) + "\n";
    const int64_t fd = env.Open("result/http_stats",
                                VOpenFlags::kWrite | VOpenFlags::kCreate | VOpenFlags::kTruncate);
    env.Write(fd, stats_line);
    env.Close(fd);
  };
}

}  // namespace mvee
