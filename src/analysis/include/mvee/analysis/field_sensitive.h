// Field-sensitive Andersen-style points-to analysis.
//
// The paper's §4.3.1 post-mortem of its two automation attempts is all about
// field sensitivity on heap objects:
//
//   "Although DSA is field-sensitive, we found that the field sensitivity is
//    often lost because heap objects of incompatible types get unified. ...
//    Although SVF does a better job at maintaining field sensitivity, we
//    found no way to query its field sensitive results for heap objects. ...
//    In both cases, the majority of type (iii) instructions that target
//    heap-allocated variables are classified as potential aliases of type
//    (i) and (ii) instruction operands."
//
// This analysis is the missing piece the paper left to future work: an
// inclusion-based solver whose abstract locations are (object, field) pairs,
// queryable at field granularity for heap objects. A heap node carrying an
// atomically-updated reference count in field 0 and payload in fields 1..n
// (the STL refcounting pattern of §5.3) keeps its payload accesses unmarked,
// where the field-insensitive analyses mark every access to the object.
//
// Opaque pointer arithmetic (kGep with field = -1) collapses the result to
// the any-field wildcard — exactly the SVF conservatism the paper observed.

#ifndef MVEE_ANALYSIS_FIELD_SENSITIVE_H_
#define MVEE_ANALYSIS_FIELD_SENSITIVE_H_

#include <cstdint>
#include <set>
#include <vector>

#include "mvee/analysis/mir.h"
#include "mvee/analysis/syncop_analysis.h"

namespace mvee {

// Abstract location: a field within an object. field == kAnyField matches
// every field of the object (result of opaque arithmetic).
struct FieldLoc {
  int32_t object = -1;
  int32_t field = 0;

  static constexpr int32_t kAnyField = -1;

  friend bool operator<(const FieldLoc& a, const FieldLoc& b) {
    return a.object != b.object ? a.object < b.object : a.field < b.field;
  }
  friend bool operator==(const FieldLoc&, const FieldLoc&) = default;
};

// Two locations may denote the same memory iff the objects match and either
// field is the wildcard or they are equal.
bool LocsMayAlias(const FieldLoc& a, const FieldLoc& b);

class FieldSensitiveAnalysis {
 public:
  explicit FieldSensitiveAnalysis(const MirModule& module);

  const std::set<FieldLoc>& PointsTo(int32_t reg) const;

  bool MayAlias(int32_t reg_a, int32_t reg_b) const;
  // True if some location of `reg` may alias some location in `locs`.
  bool MayPointInto(int32_t reg, const std::set<FieldLoc>& locs) const;

  const AnalysisStats& stats() const { return stats_; }
  // Back-compat cost metric (pre-AnalysisStats callers).
  uint64_t solver_iterations() const { return stats_.solver_iterations; }

 private:
  struct GepEdge {
    int32_t target;
    int32_t field;  // kAnyField for opaque arithmetic.
  };

  std::vector<std::set<FieldLoc>> points_to_;       // Per register.
  std::vector<std::vector<int32_t>> copy_targets_;  // Mov edges.
  std::vector<std::vector<GepEdge>> gep_targets_;   // Field-select edges.
  AnalysisStats stats_;
  std::set<FieldLoc> empty_;
};

// The two-stage identification of §4.3 at field granularity. Same report
// shape as the field-insensitive pipelines so the three can be compared
// row by row (bench_table3_syncops does).
SyncOpReport IdentifySyncOpsFieldSensitive(const MirModule& module,
                                           const SyncOpAnalysisOptions& options = {});

}  // namespace mvee

#endif  // MVEE_ANALYSIS_FIELD_SENSITIVE_H_
