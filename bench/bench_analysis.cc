// Analysis engine bench: module size x solver x pipeline sweep over the
// interprocedural corpus (corpus.h), emitting BENCH_analysis.json.
//
// Per module row (~10k / ~40k / >=100k MIR instructions) the bench times the
// full two-stage identification pipeline under each engine:
//   - steensgaard            unification (DSA-style), near-linear
//   - andersen-baseline      textbook std::set worklist (fast_solver=0)
//   - andersen-wave          sparse bitmaps + difference propagation +
//                            online cycle collapse (fast_solver=1)
//   - field-sensitive        inclusion solver over (object, field) locs
// and reports: solve wall time, solution memory, precision (spurious type
// (iii) marks = marked memops whose source line carries the corpus'
// "noise:" ground-truth prefix), and plan quality through
// DeriveAssignmentPlan (how many variables each engine routes to kNull /
// kTotalOrder / kPartialOrder — precision loss shows up as PO fallback).
//
// CI gate: MVEE_BENCH_ANALYSIS_MIN_SPEEDUP fails the run when the wave
// engine does not beat the baseline Andersen by the given factor on the
// largest (>=100k instruction) row, or when the two Andersen engines
// disagree on ANY mark (the speedup must come at exact precision parity;
// the differential tests prove per-register equality, the bench re-checks
// the end-to-end reports). 0/unset = report only.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.h"
#include "mvee/analysis/assignment_plan.h"
#include "mvee/analysis/corpus.h"
#include "mvee/analysis/field_sensitive.h"
#include "mvee/analysis/syncop_analysis.h"

namespace {

using namespace mvee;

size_t SpuriousMarks(const SyncOpReport& report) {
  size_t spurious = 0;
  for (const auto& site : report.type_iii) {
    if (site.source_line.rfind("noise:", 0) == 0) {
      ++spurious;
    }
  }
  return spurious;
}

struct PlanCounts {
  size_t null_routes = 0;
  size_t total_order = 0;
  size_t partial_order = 0;
  size_t per_variable = 0;
  size_t escaping_thread_local = 0;  // Escaping locals wrongly kept kNull-able.
};

PlanCounts CountPlan(const MirModule& module, const SyncOpReport& report,
                     const std::vector<int32_t>& escaping_objects) {
  const AssignmentPlanReport plan = DeriveAssignmentPlan(module, report);
  PlanCounts counts;
  for (const auto& variable : plan.variables) {
    switch (variable.kind) {
      case AgentKind::kNull:
        ++counts.null_routes;
        break;
      case AgentKind::kTotalOrder:
        ++counts.total_order;
        break;
      case AgentKind::kPartialOrder:
        ++counts.partial_order;
        break;
      default:
        ++counts.per_variable;
        break;
    }
    for (int32_t escaping : escaping_objects) {
      if (variable.object == escaping &&
          variable.verdict == AssignmentVerdict::kThreadLocal) {
        ++counts.escaping_thread_local;
      }
    }
  }
  return counts;
}

struct EngineRow {
  std::string module;
  size_t instructions = 0;
  std::string engine;
  double solve_seconds = 0.0;
  SyncOpReport report;
  PlanCounts plan;
};

template <typename Fn>
EngineRow MeasureEngine(const InterprocCorpus& corpus, const char* engine, Fn identify) {
  EngineRow row;
  row.module = corpus.module.name;
  row.instructions = corpus.module.InstructionCount();
  row.engine = engine;
  const auto start = std::chrono::steady_clock::now();
  row.report = identify(corpus.module);
  row.solve_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  row.plan = CountPlan(corpus.module, row.report, corpus.escaping_objects);
  return row;
}

void WriteAnalysisJson(const std::vector<EngineRow>& rows, double largest_speedup,
                       bool parity_ok) {
  const std::string path = bench::ResolveBenchJsonPath("BENCH_analysis.json");
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "bench_analysis: cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(file, "{\n  \"analysis\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const EngineRow& row = rows[i];
    std::fprintf(
        file,
        "    {\"module\": \"%s\", \"instructions\": %zu, \"engine\": \"%s\", "
        "\"solve_seconds\": %.6f, \"points_to_bytes\": %llu, "
        "\"solver_iterations\": %llu, \"sccs_collapsed\": %llu, "
        "\"call_edges_resolved\": %llu, \"type_iii\": %zu, \"spurious_marks\": %zu, "
        "\"unmarked_memops\": %zu, \"null_routes\": %zu, \"total_order_routes\": %zu, "
        "\"partial_order_routes\": %zu, \"per_variable_routes\": %zu}%s\n",
        row.module.c_str(), row.instructions, row.engine.c_str(), row.solve_seconds,
        static_cast<unsigned long long>(row.report.stats.points_to_bytes),
        static_cast<unsigned long long>(row.report.stats.solver_iterations),
        static_cast<unsigned long long>(row.report.stats.sccs_collapsed),
        static_cast<unsigned long long>(row.report.stats.call_edges_resolved),
        row.report.type_iii.size(), SpuriousMarks(row.report), row.report.unmarked_memops,
        row.plan.null_routes, row.plan.total_order, row.plan.partial_order,
        row.plan.per_variable, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(file, "  ],\n  \"wave_vs_baseline_speedup\": %.2f,\n", largest_speedup);
  std::fprintf(file, "  \"precision_parity\": %s\n}\n", parity_ok ? "true" : "false");
  std::fclose(file);
  std::printf("wrote %s (%zu rows)\n", path.c_str(), rows.size());
}

// Exact end-to-end agreement between the two Andersen engines.
bool ReportsMatch(const SyncOpReport& a, const SyncOpReport& b) {
  auto sites_match = [](const std::vector<SyncOpSite>& x, const std::vector<SyncOpSite>& y) {
    if (x.size() != y.size()) {
      return false;
    }
    for (size_t i = 0; i < x.size(); ++i) {
      if (x[i].function != y[i].function || x[i].instruction_index != y[i].instruction_index) {
        return false;
      }
    }
    return true;
  };
  return sites_match(a.type_i, b.type_i) && sites_match(a.type_ii, b.type_ii) &&
         sites_match(a.type_iii, b.type_iii) && a.sync_objects == b.sync_objects &&
         a.unmarked_memops == b.unmarked_memops;
}

}  // namespace

int main() {
  bench::PrintHeader("Analysis engines: solve time / memory / precision / plan quality");

  // The field-sensitive engine shares the baseline's std::set representation;
  // above this size it would dominate the sweep's wall time, so it is capped
  // (and the cap is logged — the row simply has no field-sensitive entry).
  const size_t field_sensitive_cap = static_cast<size_t>(
      bench::EnvInt("MVEE_BENCH_ANALYSIS_FS_CAP", 50000));

  double min_speedup = 0.0;
  if (const char* env = std::getenv("MVEE_BENCH_ANALYSIS_MIN_SPEEDUP")) {
    min_speedup = std::atof(env);
  }

  std::vector<EngineRow> rows;
  double largest_speedup = 0.0;
  size_t largest_instructions = 0;
  bool parity_ok = true;

  for (const InterprocSpec& spec : ScaledInterprocSpecs()) {
    const InterprocCorpus corpus = BuildInterprocModule(spec);
    const size_t instructions = corpus.module.InstructionCount();
    std::printf("\n%s: %zu instructions, %zu objects, %zu functions, %zu noise memops\n",
                spec.module_name, instructions, corpus.module.objects.size(),
                corpus.module.functions.size(), corpus.noise_memops);
    std::printf("%-20s %12s %12s %10s %10s %8s %22s\n", "engine", "solve s", "mem bytes",
                "type(iii)", "spurious", "iters", "plan null/TO/PO/PVO");

    auto print_row = [&](const EngineRow& row) {
      char plan[64];
      std::snprintf(plan, sizeof(plan), "%zu/%zu/%zu/%zu", row.plan.null_routes,
                    row.plan.total_order, row.plan.partial_order, row.plan.per_variable);
      std::printf("%-20s %12.4f %12llu %10zu %10zu %8llu %22s\n", row.engine.c_str(),
                  row.solve_seconds,
                  static_cast<unsigned long long>(row.report.stats.points_to_bytes),
                  row.report.type_iii.size(), SpuriousMarks(row.report),
                  static_cast<unsigned long long>(row.report.stats.solver_iterations), plan);
      if (row.plan.escaping_thread_local != 0) {
        std::printf("  WARNING: %zu escaping locals kept a thread-local verdict\n",
                    row.plan.escaping_thread_local);
      }
      rows.push_back(row);
    };

    const EngineRow steensgaard = MeasureEngine(
        corpus, "steensgaard", [](const MirModule& m) { return IdentifySyncOps(m); });
    print_row(steensgaard);

    SyncOpAnalysisOptions baseline_options;
    baseline_options.analysis.fast_solver = false;
    const EngineRow baseline =
        MeasureEngine(corpus, "andersen-baseline", [&](const MirModule& m) {
          return IdentifySyncOpsAndersen(m, baseline_options);
        });
    print_row(baseline);

    SyncOpAnalysisOptions fast_options;
    fast_options.analysis.fast_solver = true;
    const EngineRow fast = MeasureEngine(corpus, "andersen-wave", [&](const MirModule& m) {
      return IdentifySyncOpsAndersen(m, fast_options);
    });
    print_row(fast);

    if (!ReportsMatch(baseline.report, fast.report)) {
      std::fprintf(stderr, "FAIL: %s: wave and baseline Andersen reports disagree\n",
                   spec.module_name);
      parity_ok = false;
    }
    const double speedup =
        fast.solve_seconds > 0.0 ? baseline.solve_seconds / fast.solve_seconds : 0.0;
    std::printf("  wave vs baseline: %.1fx (parity %s)\n", speedup,
                parity_ok ? "ok" : "BROKEN");
    if (instructions > largest_instructions) {
      largest_instructions = instructions;
      largest_speedup = speedup;
    }

    if (instructions <= field_sensitive_cap) {
      const EngineRow sensitive =
          MeasureEngine(corpus, "field-sensitive", [](const MirModule& m) {
            return IdentifySyncOpsFieldSensitive(m);
          });
      print_row(sensitive);
    } else {
      std::printf("  (field-sensitive skipped above %zu instructions; "
                  "raise MVEE_BENCH_ANALYSIS_FS_CAP to include it)\n",
                  field_sensitive_cap);
    }
  }

  WriteAnalysisJson(rows, largest_speedup, parity_ok);

  bool gate_ok = parity_ok;
  if (min_speedup > 0.0 && largest_speedup < min_speedup) {
    std::fprintf(stderr,
                 "FAIL: wave speedup %.1fx on the %zu-instruction module below "
                 "required %.1fx\n",
                 largest_speedup, largest_instructions, min_speedup);
    gate_ok = false;
  }
  std::printf("\nwave vs baseline on largest module (%zu instructions): %.1fx%s\n",
              largest_instructions, largest_speedup,
              min_speedup > 0.0 ? (gate_ok ? " (gate ok)" : " (gate FAILED)") : "");
  return gate_ok ? 0 : 1;
}
