// Virtual-kernel concurrency mode default.
//
// Kept in its own tiny header so both the monitor's MveeOptions and the
// vkernel components that are constructed outside an Mvee (unit tests,
// NativeRunner processes) resolve the same default without the options
// header depending on the whole vkernel or vice versa.

#ifndef MVEE_VKERNEL_VKERNEL_CONFIG_H_
#define MVEE_VKERNEL_VKERNEL_CONFIG_H_

#include <cstdlib>

namespace mvee {

// Default for MveeOptions::sharded_vkernel and the standalone vkernel
// component constructors: on, unless the environment forces the seed's
// global-mutex baseline (MVEE_SHARDED_VKERNEL=0). The override lets the
// entire existing test suite sweep either implementation without edits
// (`MVEE_SHARDED_VKERNEL=0 ctest`), mirroring MVEE_WAITFREE_RENDEZVOUS;
// explicit assignments in code always win.
inline bool DefaultShardedVkernel() {
  const char* env = std::getenv("MVEE_SHARDED_VKERNEL");
  return env == nullptr || env[0] != '0';
}

}  // namespace mvee

#endif  // MVEE_VKERNEL_VKERNEL_CONFIG_H_
