// Instrumented synchronization primitives.
//
// These are the primitives that variant programs (the synthetic PARSEC /
// SPLASH workloads, the mini web server, and user code) build on. Every
// internal atomic access is an instrumented sync op, so any agent can record
// and replay the full synchronization behaviour. Blocking primitives sleep
// through the SyncContext's futex hook (routed through the monitor as
// sys_futex in MVEE runs) and degrade to spin/yield when no hook is
// installed (native runs).

#ifndef MVEE_SYNC_PRIMITIVES_H_
#define MVEE_SYNC_PRIMITIVES_H_

#include <cstdint>

#include "mvee/sync/instrumented.h"

namespace mvee {

// Test-and-set spinlock with sched_yield backoff — the paper's Listing 1
// example of an ad-hoc primitive built from a LOCK CMPXCHG (type i) and a
// plain aligned store (type iii).
class SpinLock {
 public:
  void Lock();
  bool TryLock();
  void Unlock();

  // Registers the lock word for per-variable agent routing under `name`
  // (docs/DESIGN.md §11); no-op under non-adaptive agents.
  void Bind(const char* name) const { state_.Bind(name); }

 private:
  InstrumentedAtomic<int32_t> state_{0};
};

// FIFO ticket lock: two LOCK XADD / aligned-load sync variables.
class TicketLock {
 public:
  void Lock();
  void Unlock();

 private:
  InstrumentedAtomic<int32_t> next_ticket_{0};
  InstrumentedAtomic<int32_t> now_serving_{0};
};

// Futex-based mutex (three-state: 0 free, 1 locked, 2 contended), the
// pthread_mutex equivalent.
class Mutex {
 public:
  void Lock();
  bool TryLock();
  void Unlock();

  // Registers the mutex word for per-variable agent routing under `name`
  // (docs/DESIGN.md §11); no-op under non-adaptive agents.
  void Bind(const char* name) const { state_.Bind(name); }

  const InstrumentedAtomic<int32_t>& state() const { return state_; }

 private:
  InstrumentedAtomic<int32_t> state_{0};
};

// RAII guard for any lockable. The destructor swallows VariantKilled: when
// the MVEE tears the variants down, an instrumented unlock on the unwind
// path may itself be aborted, and throwing out of a destructor during
// unwinding would terminate the process.
template <typename LockType>
class LockGuard {
 public:
  explicit LockGuard(LockType& lock) : lock_(lock) { lock_.Lock(); }
  ~LockGuard() {
    try {
      lock_.Unlock();
    } catch (...) {
      // MVEE shutdown in progress; the thread unwinds via VariantKilled.
    }
  }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  LockType& lock_;
};

// Condition variable over Mutex (sequence-count design, immune to missed
// wakeups).
class CondVar {
 public:
  // Atomically unlocks `mutex`, waits for a signal, relocks.
  void Wait(Mutex& mutex);
  void Signal();
  void Broadcast();

 private:
  InstrumentedAtomic<int32_t> seq_{0};
};

// Sense-reversing barrier for `participants` threads.
class Barrier {
 public:
  explicit Barrier(int32_t participants) : participants_(participants) {}

  // Returns true for exactly one thread per phase (the "serial" thread).
  bool Arrive();

 private:
  const int32_t participants_;
  InstrumentedAtomic<int32_t> arrived_{0};
  InstrumentedAtomic<int32_t> phase_{0};
};

// Counting semaphore.
class Semaphore {
 public:
  explicit Semaphore(int32_t initial) : count_(initial) {}

  void Acquire();
  bool TryAcquire();
  void Release();

 private:
  InstrumentedAtomic<int32_t> count_;
};

// Writer-preference readers/writer lock.
class RwLock {
 public:
  void ReadLock();
  void ReadUnlock();
  void WriteLock();
  void WriteUnlock();

 private:
  // >=0: reader count; -1: writer holds it.
  InstrumentedAtomic<int32_t> state_{0};
  InstrumentedAtomic<int32_t> writers_waiting_{0};
};

// One-shot initialization flag.
class OnceFlag {
 public:
  // Returns true for the single thread that should run the initializer;
  // other callers block until Done() is called.
  bool Begin();
  void Done();
  // Convenience: runs `fn` exactly once across all callers.
  template <typename Fn>
  void CallOnce(Fn&& fn) {
    if (Begin()) {
      fn();
      Done();
    }
  }

 private:
  InstrumentedAtomic<int32_t> state_{0};  // 0 new, 1 running, 2 done
};

// Completion counter: Add(n) before spawning, Done() in each worker,
// Wait() in the coordinator.
class WaitGroup {
 public:
  void Add(int32_t n) { outstanding_.FetchAdd(n); }
  void Done();
  void Wait();

 private:
  InstrumentedAtomic<int32_t> outstanding_{0};
};

}  // namespace mvee

#endif  // MVEE_SYNC_PRIMITIVES_H_
