#include "mvee/util/fault_injection.h"

#include <cstdlib>

#include "mvee/util/rng.h"

namespace mvee {

namespace {

struct SiteNameEntry {
  const char* name;
  FaultSite site;
};

constexpr SiteNameEntry kSiteNames[] = {
    {"crash", FaultSite::kCrashAtSyscall},
    {"stall", FaultSite::kStallArrival},
    {"digest", FaultSite::kCorruptDigest},
    {"drop-futex-wake", FaultSite::kDropFutexWake},
    {"drop-waitq-wake", FaultSite::kDropWaitqWake},
    {"delay-publish", FaultSite::kDelayRingPublish},
    {"leak-fd-lease", FaultSite::kLeakFdLease},
};

bool ParseSiteName(const std::string& token, FaultSite* site) {
  for (const SiteNameEntry& entry : kSiteNames) {
    if (token == entry.name) {
      *site = entry.site;
      return true;
    }
  }
  return false;
}

// Strict non-negative integer parse; rejects empty and trailing garbage.
bool ParseU64(const std::string& token, uint64_t* value) {
  if (token.empty()) {
    return false;
  }
  uint64_t result = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') {
      return false;
    }
    result = result * 10 + static_cast<uint64_t>(c - '0');
  }
  *value = result;
  return true;
}

}  // namespace

const char* FaultSiteName(FaultSite site) {
  for (const SiteNameEntry& entry : kSiteNames) {
    if (entry.site == site) {
      return entry.name;
    }
  }
  return "unknown";
}

bool FaultPlan::Parse(const std::string& text, FaultPlan* plan, std::string* error) {
  plan->entries.clear();
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find(';', pos);
    if (end == std::string::npos) {
      end = text.size();
    }
    const std::string spec = text.substr(pos, end - pos);
    pos = end + 1;
    if (spec.empty()) {
      continue;
    }

    Entry entry;
    // Split off the site name (up to '@' or ':').
    const size_t at = spec.find('@');
    const size_t colon = spec.find(':');
    const size_t name_end = std::min(at, colon);
    if (!ParseSiteName(spec.substr(0, name_end), &entry.site)) {
      if (error != nullptr) {
        *error = "unknown fault site in '" + spec + "'";
      }
      return false;
    }
    size_t rest = 0;
    if (at != std::string::npos && at < colon) {
      // '@' victim selector: index or '*'.
      if (colon == std::string::npos) {
        if (error != nullptr) {
          *error = "missing ':nth' in '" + spec + "'";
        }
        return false;
      }
      const std::string victim = spec.substr(at + 1, colon - at - 1);
      if (victim == "*") {
        entry.variant = kFaultSeededVariant;
      } else {
        uint64_t index = 0;
        if (!ParseU64(victim, &index) || index >= kFaultSeededVariant) {
          if (error != nullptr) {
            *error = "bad victim '" + victim + "' in '" + spec + "'";
          }
          return false;
        }
        entry.variant = static_cast<uint32_t>(index);
      }
      rest = colon + 1;
    } else if (colon != std::string::npos) {
      rest = colon + 1;
    } else {
      if (error != nullptr) {
        *error = "missing ':nth' in '" + spec + "'";
      }
      return false;
    }

    // nth[:param]
    const size_t param_colon = spec.find(':', rest);
    const std::string nth_token =
        spec.substr(rest, param_colon == std::string::npos ? std::string::npos
                                                           : param_colon - rest);
    if (!ParseU64(nth_token, &entry.nth) || entry.nth == 0) {
      if (error != nullptr) {
        *error = "bad nth '" + nth_token + "' in '" + spec + "'";
      }
      return false;
    }
    if (param_colon != std::string::npos) {
      if (!ParseU64(spec.substr(param_colon + 1), &entry.param)) {
        if (error != nullptr) {
          *error = "bad param in '" + spec + "'";
        }
        return false;
      }
    }
    plan->entries.push_back(entry);
  }
  return true;
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector injector;
  return injector;
}

bool FaultInjector::Arm(const FaultPlan& plan, uint32_t num_variants, uint64_t seed) {
  if (plan.entries.size() > kMaxEntries) {
    return false;
  }
  Disarm();
  uint32_t sites = 0;
  size_t count = 0;
  for (const FaultPlan::Entry& entry : plan.entries) {
    ArmedEntry& armed = entries_[count];
    armed.site = entry.site;
    armed.nth = entry.nth;
    armed.param = entry.param;
    armed.hits.store(0, std::memory_order_relaxed);
    if (entry.variant == kFaultSeededVariant) {
      // '*' resolves to a seed-chosen SLAVE: the master (variant 0) is not
      // excisable (docs/DESIGN.md §9), so a seeded chaos victim must be a
      // survivor-eligible target. Mix the entry index in so multiple '*'
      // entries can pick distinct victims from one seed.
      if (num_variants > 1) {
        armed.variant =
            1 + static_cast<uint32_t>(SplitMix64(seed ^ (0x9e3779b9ull * (count + 1))) %
                                      (num_variants - 1));
      } else {
        armed.variant = 0;
      }
    } else {
      armed.variant = entry.variant;
    }
    sites |= 1u << static_cast<uint32_t>(entry.site);
    ++count;
  }
  for (std::atomic<uint64_t>& fired : fired_) {
    fired.store(0, std::memory_order_relaxed);
  }
  entry_count_.store(count, std::memory_order_release);
  armed_sites_.store(sites, std::memory_order_release);
  return true;
}

void FaultInjector::Disarm() {
  armed_sites_.store(0, std::memory_order_release);
  entry_count_.store(0, std::memory_order_release);
}

uint32_t FaultInjector::ResolvedVictim(FaultSite site) const {
  const size_t count = entry_count_.load(std::memory_order_acquire);
  for (size_t i = 0; i < count; ++i) {
    if (entries_[i].site == site) {
      return entries_[i].variant;
    }
  }
  return kFaultAnyVariant;
}

bool FaultInjector::FireSlow(FaultSite site, uint32_t variant, uint64_t* param) {
  bool fire = false;
  const size_t count = entry_count_.load(std::memory_order_acquire);
  for (size_t i = 0; i < count; ++i) {
    ArmedEntry& entry = entries_[i];
    if (entry.site != site) {
      continue;
    }
    if (entry.variant != kFaultAnyVariant && variant != kFaultAnyVariant &&
        entry.variant != variant) {
      continue;
    }
    const uint64_t hit = entry.hits.fetch_add(1, std::memory_order_relaxed) + 1;
    if (hit == entry.nth) {
      fire = true;
      if (param != nullptr) {
        *param = entry.param;
      }
      fired_[static_cast<uint32_t>(site)].fetch_add(1, std::memory_order_relaxed);
    }
  }
  return fire;
}

}  // namespace mvee
