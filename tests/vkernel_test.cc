// Unit tests for the virtual kernel substrate: VFS, fd tables, pipes, the
// virtual network, address spaces, futexes, and the syscall executor.

#include <gtest/gtest.h>

#include <cerrno>
#include <string>
#include <thread>
#include <vector>

#include "mvee/vkernel/vkernel.h"

namespace mvee {
namespace {

std::span<const uint8_t> Bytes(const std::string& s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size()};
}

TEST(VfsTest, OpenCreateReadWrite) {
  Vfs vfs;
  EXPECT_EQ(vfs.Open("absent", /*create=*/false), nullptr);
  auto file = vfs.Open("f", /*create=*/true);
  ASSERT_NE(file, nullptr);
  file->Append(Bytes("hello").data(), 5);
  uint8_t buffer[8] = {};
  EXPECT_EQ(file->ReadAt(0, buffer, 8), 5);
  EXPECT_EQ(std::string(buffer, buffer + 5), "hello");
  EXPECT_EQ(file->ReadAt(5, buffer, 8), 0);  // EOF.
}

TEST(VfsTest, WriteAtGrowsFile) {
  Vfs vfs;
  auto file = vfs.Open("f", true);
  file->WriteAt(10, Bytes("x").data(), 1);
  EXPECT_EQ(file->Size(), 11u);
}

TEST(VfsTest, StatAndUnlink) {
  Vfs vfs;
  vfs.PutFile("a", {1, 2, 3});
  VStat st;
  EXPECT_EQ(vfs.Stat("a", &st), 0);
  EXPECT_EQ(st.size, 3u);
  EXPECT_EQ(vfs.Unlink("a"), 0);
  EXPECT_EQ(vfs.Stat("a", &st), -ENOENT);
  EXPECT_EQ(vfs.Unlink("a"), -ENOENT);
}

TEST(FdTableTest, LowestAvailableAllocation) {
  FdTable fds;
  FdEntry entry;
  entry.kind = FdKind::kFile;
  // 0,1,2 reserved for stdio.
  EXPECT_EQ(fds.Allocate(entry), 3);
  EXPECT_EQ(fds.Allocate(entry), 4);
  EXPECT_EQ(fds.Close(3), 0);
  // Lowest free slot is reused — the property the paper's §3.1 fd example
  // depends on.
  EXPECT_EQ(fds.Allocate(entry), 3);
}

TEST(FdTableTest, CloseInvalidFd) {
  FdTable fds;
  EXPECT_EQ(fds.Close(99), -EBADF);
  EXPECT_EQ(fds.Close(-1), -EBADF);
  EXPECT_EQ(fds.Get(99), nullptr);
}

TEST(FdTableTest, DupCopiesEntry) {
  FdTable fds;
  FdEntry entry;
  entry.kind = FdKind::kFile;
  entry.path = "p";
  const int32_t fd = fds.Allocate(entry);
  const int32_t dup = fds.Dup(fd);
  EXPECT_GT(dup, fd);
  EXPECT_EQ(fds.Get(dup)->path, "p");
  EXPECT_EQ(fds.Dup(1234), -EBADF);
}

TEST(PipeTest, BlockingRoundTrip) {
  VPipe pipe;
  std::thread writer([&] {
    pipe.Write(Bytes("abc").data(), 3);
    pipe.CloseWriteEnd();
  });
  uint8_t buffer[8] = {};
  int64_t n = pipe.Read(buffer, 8);
  EXPECT_EQ(n, 3);
  EXPECT_EQ(pipe.Read(buffer, 8), 0);  // EOF after close.
  writer.join();
}

TEST(PipeTest, WriteToClosedReadEndFails) {
  VPipe pipe;
  pipe.CloseReadEnd();
  EXPECT_EQ(pipe.Write(Bytes("abc").data(), 3), -EPIPE);
}

TEST(PipeTest, BackpressureBlocksWriter) {
  VPipe pipe(/*capacity=*/4);
  ASSERT_EQ(pipe.Write(Bytes("abcd").data(), 4), 4);
  std::atomic<bool> wrote{false};
  std::thread writer([&] {
    pipe.Write(Bytes("e").data(), 1);
    wrote.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(wrote.load());
  uint8_t buffer[4];
  pipe.Read(buffer, 4);
  writer.join();
  EXPECT_TRUE(wrote.load());
}

TEST(NetTest, ListenConnectAcceptEcho) {
  VirtualNetwork network;
  std::shared_ptr<VListener> listener;
  ASSERT_EQ(network.Listen(8080, 16, &listener), 0);
  EXPECT_EQ(network.Listen(8080, 16, &listener), -EADDRINUSE);

  auto client_conn = network.Connect(8080);
  ASSERT_NE(client_conn, nullptr);
  auto server_conn = listener->Accept();
  ASSERT_EQ(server_conn, client_conn);

  client_conn->ClientWrite(Bytes("ping").data(), 4);
  uint8_t buffer[8] = {};
  EXPECT_EQ(server_conn->ServerRead(buffer, 8), 4);
  server_conn->ServerWrite(Bytes("pong!").data(), 5);
  EXPECT_EQ(client_conn->ClientRead(buffer, 8), 5);
  EXPECT_EQ(std::string(buffer, buffer + 5), "pong!");
}

TEST(NetTest, ConnectToClosedPortFails) {
  VirtualNetwork network;
  EXPECT_EQ(network.Connect(9999), nullptr);
}

TEST(NetTest, CloseAllUnblocksAccept) {
  VirtualNetwork network;
  std::shared_ptr<VListener> listener;
  ASSERT_EQ(network.Listen(80, 4, &listener), 0);
  std::thread acceptor([&] { EXPECT_EQ(listener->Accept(), nullptr); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  network.CloseAll();
  acceptor.join();
}

TEST(AddressSpaceTest, BrkQueryAndMove) {
  AddressSpace mem(0x1000, 0x100000);
  uint64_t brk = 0;
  EXPECT_EQ(mem.Brk(0, &brk), 0);
  EXPECT_EQ(brk, 0x1000u);
  EXPECT_EQ(mem.Brk(4096, &brk), 0);
  EXPECT_EQ(brk, 0x2000u);
  EXPECT_EQ(mem.Brk(-4096, &brk), 0);
  EXPECT_EQ(brk, 0x1000u);
  EXPECT_EQ(mem.Brk(-8192, &brk), -ENOMEM);  // Below heap base.
}

TEST(AddressSpaceTest, MmapMunmapMprotect) {
  AddressSpace mem(0x1000, 0x100000);
  uint64_t addr = 0;
  EXPECT_EQ(mem.Mmap(100, VProt::kRead | VProt::kWrite, &addr), 0);
  EXPECT_EQ(addr, 0x100000u);
  EXPECT_EQ(mem.MappingCount(), 1u);
  EXPECT_EQ(mem.ProtOf(addr), VProt::kRead | VProt::kWrite);
  EXPECT_EQ(mem.Mprotect(addr, 100, VProt::kRead), 0);
  EXPECT_EQ(mem.ProtOf(addr), VProt::kRead);
  EXPECT_EQ(mem.Mprotect(addr + 4096, 100, VProt::kRead), -ENOMEM);
  EXPECT_EQ(mem.Munmap(addr, 100), 0);
  EXPECT_EQ(mem.MappingCount(), 0u);
  EXPECT_EQ(mem.Munmap(addr, 100), -EINVAL);
  EXPECT_EQ(mem.Mmap(0, VProt::kRead, &addr), -EINVAL);
}

TEST(AddressSpaceTest, DistinctBasesGiveDistinctAddresses) {
  AddressSpace a(0x1000, 0x100000);
  AddressSpace b(0x5000, 0x500000);
  uint64_t addr_a = 0;
  uint64_t addr_b = 0;
  a.Mmap(4096, VProt::kRead, &addr_a);
  b.Mmap(4096, VProt::kRead, &addr_b);
  EXPECT_NE(addr_a, addr_b);
  // Logical (base-relative) addresses match: the property the monitor's
  // comparison relies on.
  EXPECT_EQ(addr_a - 0x100000, addr_b - 0x500000);
}

TEST(FutexTest, WakeReleasesWaiter) {
  FutexTable futexes;
  std::atomic<int32_t> word{1};
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    EXPECT_EQ(futexes.Wait(0x1234, &word, 1), 0);
    woke.store(true);
  });
  while (futexes.WaiterCount() == 0) {
    std::this_thread::yield();
  }
  EXPECT_FALSE(woke.load());
  EXPECT_EQ(futexes.Wake(0x1234, 1), 1);
  waiter.join();
  EXPECT_TRUE(woke.load());
}

TEST(FutexTest, ValueMismatchReturnsEagain) {
  FutexTable futexes;
  std::atomic<int32_t> word{2};
  EXPECT_EQ(futexes.Wait(0x1, &word, 1), -EAGAIN);
}

TEST(FutexTest, WakeWithNoWaitersReturnsZero) {
  FutexTable futexes;
  EXPECT_EQ(futexes.Wake(0x9, 10), 0);
}

TEST(FutexTest, WakeAllReleasesEveryone) {
  FutexTable futexes;
  std::atomic<int32_t> word{5};
  std::vector<std::thread> waiters;
  for (int i = 0; i < 3; ++i) {
    waiters.emplace_back([&] { futexes.Wait(0x7, &word, 5); });
  }
  while (futexes.WaiterCount() < 3) {
    std::this_thread::yield();
  }
  futexes.WakeAll();
  for (auto& t : waiters) {
    t.join();
  }
}

// --- Syscall executor ---

class VirtualKernelTest : public ::testing::Test {
 protected:
  VirtualKernel kernel_;
  ProcessState process_{1000, 0x10000, 0x100000};

  int64_t Call(SyscallRequest& request) { return kernel_.Execute(process_, request).retval; }
};

TEST_F(VirtualKernelTest, OpenWriteReadRoundTrip) {
  SyscallRequest open;
  open.sysno = Sysno::kOpen;
  open.path = "data.txt";
  open.arg0 = VOpenFlags::kRead | VOpenFlags::kWrite | VOpenFlags::kCreate;
  const int64_t fd = Call(open);
  ASSERT_GE(fd, 3);

  SyscallRequest write;
  write.sysno = Sysno::kWrite;
  write.arg0 = fd;
  const std::string payload = "virtual kernel";
  write.in_data = Bytes(payload);
  EXPECT_EQ(Call(write), static_cast<int64_t>(payload.size()));

  SyscallRequest seek;
  seek.sysno = Sysno::kLseek;
  seek.arg0 = fd;
  seek.arg1 = 0;
  seek.arg2 = 0;  // SEEK_SET
  EXPECT_EQ(Call(seek), 0);

  SyscallRequest read;
  read.sysno = Sysno::kRead;
  read.arg0 = fd;
  std::vector<uint8_t> buffer(payload.size());
  read.out_data = buffer;
  EXPECT_EQ(Call(read), static_cast<int64_t>(payload.size()));
  EXPECT_EQ(std::string(buffer.begin(), buffer.end()), payload);
}

TEST_F(VirtualKernelTest, OpenWithoutCreateFails) {
  SyscallRequest open;
  open.sysno = Sysno::kOpen;
  open.path = "missing";
  open.arg0 = VOpenFlags::kRead;
  EXPECT_EQ(Call(open), -ENOENT);
}

TEST_F(VirtualKernelTest, ReadBadFd) {
  SyscallRequest read;
  read.sysno = Sysno::kRead;
  read.arg0 = 77;
  uint8_t buffer[4];
  read.out_data = buffer;
  EXPECT_EQ(Call(read), -EBADF);
}

TEST_F(VirtualKernelTest, PipePacksTwoFds) {
  SyscallRequest pipe;
  pipe.sysno = Sysno::kPipe;
  const int64_t packed = Call(pipe);
  ASSERT_GE(packed, 0);
  const int32_t rfd = static_cast<int32_t>(packed & 0xffffffff);
  const int32_t wfd = static_cast<int32_t>(packed >> 32);
  EXPECT_NE(rfd, wfd);

  SyscallRequest write;
  write.sysno = Sysno::kWrite;
  write.arg0 = wfd;
  write.in_data = Bytes("xy");
  EXPECT_EQ(Call(write), 2);

  SyscallRequest read;
  read.sysno = Sysno::kRead;
  read.arg0 = rfd;
  uint8_t buffer[4];
  read.out_data = buffer;
  EXPECT_EQ(Call(read), 2);
}

TEST_F(VirtualKernelTest, GetrandomIsDeterministicPerSeed) {
  VirtualKernel kernel_a(7);
  VirtualKernel kernel_b(7);
  ProcessState process_a(1, 0x1000, 0x10000);
  ProcessState process_b(1, 0x1000, 0x10000);
  std::vector<uint8_t> buffer_a(16);
  std::vector<uint8_t> buffer_b(16);
  SyscallRequest request;
  request.sysno = Sysno::kGetrandom;
  request.out_data = buffer_a;
  kernel_a.Execute(process_a, request);
  request.out_data = buffer_b;
  kernel_b.Execute(process_b, request);
  EXPECT_EQ(buffer_a, buffer_b);
}

TEST_F(VirtualKernelTest, ApplyReplicatedEffectAdvancesFileOffset) {
  SyscallRequest open;
  open.sysno = Sysno::kOpen;
  open.path = "f";
  open.arg0 = VOpenFlags::kRead | VOpenFlags::kCreate;
  const int64_t fd = Call(open);
  kernel_.vfs().PutFile("f", {1, 2, 3, 4, 5});

  SyscallRequest read;
  read.sysno = Sysno::kRead;
  read.arg0 = fd;
  uint8_t buffer[3];
  read.out_data = buffer;
  SyscallResult master_result;
  master_result.retval = 3;
  kernel_.ApplyReplicatedEffect(process_, read, master_result);

  SyscallRequest seek;
  seek.sysno = Sysno::kLseek;
  seek.arg0 = fd;
  seek.arg1 = 0;
  seek.arg2 = 1;  // SEEK_CUR
  EXPECT_EQ(Call(seek), 3);
}

TEST_F(VirtualKernelTest, ApplyReplicatedEffectInstallsShadowAcceptFd) {
  SyscallRequest accept;
  accept.sysno = Sysno::kAccept;
  accept.arg0 = 3;
  SyscallResult master_result;
  master_result.retval = 4;
  const int64_t shadow_fd = kernel_.ApplyReplicatedEffect(process_, accept, master_result);
  EXPECT_EQ(shadow_fd, 3);  // First free fd in this fresh process.
}

TEST_F(VirtualKernelTest, ClockMonotonic) {
  SyscallRequest t;
  t.sysno = Sysno::kClockGettime;
  const int64_t first = Call(t);
  const int64_t second = Call(t);
  EXPECT_GE(second, first);
  SyscallRequest tsc;
  tsc.sysno = Sysno::kRdtsc;
  const int64_t tsc1 = Call(tsc);
  const int64_t tsc2 = Call(tsc);
  EXPECT_GT(tsc2, tsc1);
}

TEST_F(VirtualKernelTest, SyscallClassification) {
  EXPECT_EQ(ClassOf(Sysno::kRead), SyscallClass::kReplicated);
  EXPECT_EQ(ClassOf(Sysno::kFutex), SyscallClass::kReplicated);  // §4.1 fn 5.
  EXPECT_EQ(ClassOf(Sysno::kOpen), SyscallClass::kOrdered);
  EXPECT_EQ(ClassOf(Sysno::kMmap), SyscallClass::kOrdered);
  EXPECT_EQ(ClassOf(Sysno::kGettid), SyscallClass::kLocal);
  EXPECT_EQ(ClassOf(Sysno::kExit), SyscallClass::kControl);
  EXPECT_EQ(SensitivityOf(Sysno::kWrite), SyscallSensitivity::kSensitive);
  EXPECT_EQ(SensitivityOf(Sysno::kRead), SyscallSensitivity::kBenign);
}

TEST_F(VirtualKernelTest, ComparableDigestIgnoresLocalAddr) {
  SyscallRequest a;
  a.sysno = Sysno::kMprotect;
  a.logical_addr = 0x1000;
  a.local_addr = 0xAAAA0000;
  SyscallRequest b;
  b.sysno = Sysno::kMprotect;
  b.logical_addr = 0x1000;
  b.local_addr = 0xBBBB0000;  // Different raw address (ASLR).
  EXPECT_EQ(a.ComparableDigest(), b.ComparableDigest());
  b.logical_addr = 0x2000;
  EXPECT_NE(a.ComparableDigest(), b.ComparableDigest());
}

TEST_F(VirtualKernelTest, ComparableDigestCoversPayload) {
  SyscallRequest a;
  a.sysno = Sysno::kWrite;
  a.arg0 = 1;
  a.in_data = Bytes("hello");
  SyscallRequest b;
  b.sysno = Sysno::kWrite;
  b.arg0 = 1;
  b.in_data = Bytes("hellO");
  EXPECT_NE(a.ComparableDigest(), b.ComparableDigest());
}

}  // namespace
}  // namespace mvee
