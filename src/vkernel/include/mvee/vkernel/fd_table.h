// Per-process file descriptor table.
//
// Descriptors are allocated lowest-available-first, exactly like Linux. This
// is the property the paper's motivating example in §3.1 relies on: if two
// threads open files and the MVEE does not order the sys_open calls, the
// variants can hand different fd numbers to equivalent threads and diverge
// when the fds are printed or used.
//
// Layout (docs/DESIGN.md §7): a fixed, directly-indexed slot array. Each
// slot carries one generation-tagged state word ([gen:32][readers:32], gen
// odd = live) and ONE intrusive-refcounted VObject* instead of the seed's
// four shared_ptr fields. Under the sharded mode the hot lookup path is
// lock-free: Get() is a reader lease (one fetch_add, one parity check, one
// fetch_sub at release) that pins the slot against teardown; Close flips the
// generation so new lookups fail, drains the leases, then reclaims. The
// mutate paths (allocate/dup/close) serialize on one allocation mutex —
// they are fd-namespace-ordered by the monitor anyway. The baseline mode
// (sharded = false) routes every operation, lookups included, through that
// mutex: the seed's exact cost profile, measurable in-run.

#ifndef MVEE_VKERNEL_FD_TABLE_H_
#define MVEE_VKERNEL_FD_TABLE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "mvee/vkernel/net.h"
#include "mvee/vkernel/pipe.h"
#include "mvee/vkernel/vfs.h"
#include "mvee/vkernel/vkernel_config.h"
#include "mvee/vkernel/vobject.h"

namespace mvee {

enum class FdKind : uint8_t {
  kFree = 0,
  kFile,
  kPipeRead,
  kPipeWrite,
  kListener,
  kConnServer,  // accepted side
  kConnClient,  // connecting side
};

// Allocation descriptor for FdTable::Allocate: what the new fd points at.
// One polymorphic object reference; the kind says how to downcast it.
struct FdEntry {
  FdKind kind = FdKind::kFree;
  VRef<VObject> object;
  uint64_t offset = 0;
  int64_t flags = 0;
  std::string path;
  uint16_t port = 0;
};

// Thread-safe fd table. fds 0..2 are reserved at construction for
// stdin/stdout/stderr (backed by VFiles so output can be inspected).
class FdTable {
 public:
  // Fixed capacity: descriptors are dense small ints (Linux: RLIMIT_NOFILE);
  // a full table fails Allocate with -EMFILE. Fixed storage is what makes
  // the lock-free lookup safe — the seed's growable vector could relocate
  // under a concurrent Get.
  static constexpr int32_t kMaxFds = 1024;

  explicit FdTable(bool sharded = DefaultShardedVkernel());
  ~FdTable();
  FdTable(const FdTable&) = delete;
  FdTable& operator=(const FdTable&) = delete;

  struct Slot;

  // Leased view of a live descriptor. While a Ref is held (sharded mode) the
  // slot cannot be torn down: Close drains leases before reclaiming, so the
  // object pointer stays valid. Scalar fields that legitimately change on a
  // live descriptor (offset, port, kind on connect, the object on listen)
  // are atomics in the slot; everything else is frozen after allocation.
  // Do not hold a Ref across a blocking call or cache it across syscalls.
  class Ref {
   public:
    Ref() = default;
    Ref(Ref&& other) noexcept
        : table_(other.table_), slot_(other.slot_), leased_(other.leased_) {
      other.table_ = nullptr;
      other.slot_ = nullptr;
      other.leased_ = false;
    }
    Ref& operator=(Ref&& other) noexcept;
    Ref(const Ref&) = delete;
    Ref& operator=(const Ref&) = delete;
    ~Ref();

    explicit operator bool() const { return slot_ != nullptr; }

    // Atomic snapshot of the slot's (kind, object) pair — ONE load of the
    // packed word. Use this whenever a decision spans more than one kind or
    // object read (blocking-call dispatch, poll scans): separate accessor
    // calls re-read the word, and a concurrent connect() flipping the slot
    // between reads would pair a stale kind with a new object. The raw
    // pointer stays valid for the lease's lifetime (teardown drains leases;
    // displaced objects are retired, not freed).
    struct ObjectView {
      FdKind kind = FdKind::kFree;
      VObject* object = nullptr;
    };
    ObjectView view() const;

    FdKind kind() const;
    // Kind-checked downcasts; nullptr when the kind does not match (or the
    // slot carries no object, e.g. slave shadow descriptors). Each reads the
    // packed word once; do not chain two calls for one decision (see view).
    VFile* file() const;
    VPipe* pipe() const;
    VListener* listener() const;
    VConnection* conn() const;
    VObject* object() const;
    // Shares `view.object` out of the slot (for use past the lease lifetime,
    // e.g. poll subscriptions, blocking accept).
    VRef<VObject> ShareObject(const ObjectView& view) const;

    uint64_t offset() const;
    void set_offset(uint64_t offset);
    void AdvanceOffset(uint64_t delta);
    int64_t flags() const;
    uint16_t port() const;
    void set_port(uint16_t port);
    uint32_t order_domain() const;
    const std::string& path() const;

    // sys_listen: installs the listener object on a bare socket slot.
    void InstallListener(VRef<VListener> listener);
    // sys_connect: installs the connection and flips the kind.
    void PromoteToClientConn(VRef<VConnection> conn);

    // Fault injection only (docs/fault_injection.md, leak-fd-lease): forgets
    // to release the lease on destruction, leaving the slot's reader count
    // permanently elevated — a later Close wedges in its drain until
    // ReleaseAbandonedLeases repairs the count. No-op for unleased refs.
    void LeakLease();

   private:
    friend class FdTable;
    Ref(FdTable* table, Slot* slot, bool leased)
        : table_(table), slot_(slot), leased_(leased) {}
    void Release();

    FdTable* table_ = nullptr;
    Slot* slot_ = nullptr;
    bool leased_ = false;
  };

  // Allocates the lowest free descriptor and installs `entry`; -EMFILE when
  // the table is full.
  int32_t Allocate(FdEntry entry);
  // Duplicates `fd` into the lowest free slot; -EBADF if invalid.
  int32_t Dup(int32_t fd);
  // Returns an empty Ref if `fd` is invalid or free.
  Ref Get(int32_t fd);
  // Releases the descriptor; returns 0 or -EBADF. Closing the last pipe /
  // connection descriptor closes the underlying endpoint.
  int64_t Close(int32_t fd);
  // Number of live descriptors (including stdio).
  size_t LiveCount() const;

  // The ordering domain of `fd`, or OrderDomainIds::kNone if the descriptor
  // is invalid/free. Returned by value so the monitor can read it without
  // holding a lease across the call.
  uint32_t OrderDomainOf(int32_t fd) const;

  // The VFile behind stdout (fd 1); convenient for output assertions.
  VRef<VFile> StdoutFile() const { return stdout_file_; }

  // Excision repair (docs/DESIGN.md §9): returns every lease recorded by
  // Ref::LeakLease to its slot (one fetch_sub per leak), unwedging any Close
  // stuck draining readers. Safe from any thread; returns the number of
  // leases repaired.
  size_t ReleaseAbandonedLeases();
  // Leaked leases recorded and not yet repaired.
  size_t AbandonedLeaseCount() const;

  // One descriptor slot. [gen:32][readers:32]; gen odd = live. The state
  // word is the only rendezvous between lock-free readers and the mutate
  // paths: Allocate publishes the filled slot with a release gen bump,
  // readers validate with an acquire RMW, Close bumps gen again and drains
  // the reader count before tearing the payload down.
  //
  // `obj_kind` packs the owned VObject* and the FdKind into ONE atomic word
  // ([ptr:61][kind:3]; VObject alignment >= 8 keeps the low bits free) so a
  // lock-free reader can never pair a stale kind with a new object — the
  // kind is what licenses the downcast, so splitting them would be a
  // type-confusion window on connect's listener -> connection flip.
  struct alignas(64) Slot {
    std::atomic<uint64_t> state{0};
    std::atomic<uintptr_t> obj_kind{0};
    std::atomic<uint64_t> offset{0};
    std::atomic<uint16_t> port{0};
    int64_t flags = 0;          // frozen after allocation
    uint32_t order_domain = 0;  // frozen after allocation
    std::string path;           // frozen after allocation
  };

 private:
  static constexpr uint64_t kReaderOne = 1;
  static constexpr uint64_t kGenOne = uint64_t{1} << 32;
  static constexpr bool LiveState(uint64_t state) { return ((state >> 32) & 1) != 0; }
  static constexpr uint32_t ReadersOf(uint64_t state) {
    return static_cast<uint32_t>(state & 0xffffffffu);
  }

  static constexpr uintptr_t kKindMask = 7;
  static FdKind KindOf(uintptr_t word) { return static_cast<FdKind>(word & kKindMask); }
  static VObject* ObjectOf(uintptr_t word) {
    return reinterpret_cast<VObject*>(word & ~kKindMask);
  }
  static uintptr_t PackObjKind(VObject* object, FdKind kind) {
    return reinterpret_cast<uintptr_t>(object) | static_cast<uintptr_t>(kind);
  }

  // Defers the release of an object displaced from a live slot (degenerate
  // re-listen / re-connect): a leased reader may still hold the raw pointer,
  // and the lease pins the slot, not the object. Displacements are
  // essentially nonexistent in real traffic, so parking them until table
  // destruction is cheaper than a reclamation protocol.
  void RetireObject(VObject* object);

  // Records a lease deliberately dropped by Ref::LeakLease (fault injection)
  // so ReleaseAbandonedLeases can repair the reader count later.
  void RecordLeakedLease(Slot* slot);

  // Fills `slot` from `entry` and publishes it live. Allocation lock held.
  void Publish(Slot& slot, FdEntry&& entry);
  // Finds the lowest free fd in the bitmap, or -1. Allocation lock held.
  int32_t LowestFree() const;
  // Drains reader leases and tears the slot down. Allocation lock held;
  // `state_after_kill` is the state word right after the gen flip.
  void TearDown(Slot& slot, uint64_t state_after_kill);

  const bool sharded_;
  mutable std::mutex mutex_;  // allocation/teardown (every op in baseline)
  std::array<Slot, kMaxFds> slots_;
  std::array<uint64_t, kMaxFds / 64> live_bitmap_{};
  // Displaced-object parking lot (RetireObject). Own mutex: retirement runs
  // under a slot lease, and mutex_ may be held by a Close draining leases.
  mutable std::mutex retired_mutex_;
  std::vector<VObject*> retired_;
  // Slots with a deliberately-leaked reader lease (fault injection); guarded
  // by retired_mutex_ (same cold-path locking domain as the parking lot).
  std::vector<Slot*> leaked_leases_;
  VRef<VFile> stdout_file_;
  // Next per-fd ordering domain id. Monotonic (no reuse); every variant's
  // table hands out the same sequence because fd-namespace calls are totally
  // ordered by the monitor, so only the master's ids ever reach the wire.
  uint32_t next_order_domain_;
};

}  // namespace mvee

#endif  // MVEE_VKERNEL_FD_TABLE_H_
