#include "mvee/monitor/thread_set.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <sstream>

#include "mvee/util/spin.h"
#include "mvee/util/variant_killed.h"

namespace mvee {

namespace {

// Spin budget before a slab waiter parks: deep into SpinWait's yield phase
// (which starts at 64 pauses) but before its 50us-sleep tail. A wait that a
// few hundred yields did not resolve is blocked on real work, and sleep
// polling burns more context switches than one parked futex wait.
constexpr uint64_t kParkAfterSpins = 1024;
// Parked-wait slice: long enough that idle thread sets cost ~nothing, short
// enough that even a (theoretically impossible, see util/park.h) lost wakeup
// only delays a round by half a millisecond.
constexpr auto kParkSlice = std::chrono::microseconds(500);

}  // namespace

ThreadSetMonitor::ThreadSetMonitor(uint32_t tid, MonitorShared* shared)
    : tid_(tid), shared_(shared) {
  const uint32_t n = shared_->options->num_variants;
  requests_.resize(n, nullptr);
  digests_.resize(n, 0);
  // Round slabs: slab i starts serving round i; the last drainer of round r
  // re-arms its slab for round r + depth.
  slabs_ = std::vector<RoundSlab>(kSlabRingDepth);
  for (uint32_t i = 0; i < kSlabRingDepth; ++i) {
    slabs_[i].epoch.store(i, std::memory_order_relaxed);
    // Direct-construct: the slot's diagnostic sysno mirror makes ArrivalSlot
    // non-movable, so resize() (which relocates) is unavailable.
    slabs_[i].slots = std::vector<ArrivalSlot>(n);
  }
  cursors_ = std::vector<VariantCursor>(n);
  if (shared_->options->sync_model == SyncModel::kLoose) {
    // Ring depth = how far the leader may run ahead (§2 reliability model).
    size_t depth = 2;
    while (depth < shared_->options->loose_buffer_depth) {
      depth <<= 1;
    }
    loose_ring_ = std::make_unique<BroadcastRing<LooseRecord*>>(depth);
    loose_pool_ = std::vector<LooseRecord>(depth);
    loose_pool_mask_ = depth - 1;
    for (uint32_t v = 1; v < n; ++v) {
      loose_ring_->RegisterConsumer();
    }
  }
}

std::string ThreadSetMonitor::DebugString() {
  std::ostringstream out;
  out << "tid=" << tid_;
  if (shared_->options->sync_model != SyncModel::kLoose &&
      shared_->options->waitfree_rendezvous) {
    // Slab mode: diagnostics read only atomics (epochs, phases, bitmaps and
    // the slots' mirrored sysnos) — never the deposited request pointers,
    // which point at variant stacks and may already be retired. The slab
    // with the lowest epoch serves the oldest in-flight round: that is
    // where a stuck rendezvous is parked.
    const RoundSlab* oldest = &slabs_[0];
    for (const RoundSlab& slab : slabs_) {
      if (slab.epoch.load(std::memory_order_relaxed) <
          oldest->epoch.load(std::memory_order_relaxed)) {
        oldest = &slab;
      }
    }
    const uint32_t arrivals = oldest->arrivals.load(std::memory_order_acquire);
    out << " round=" << oldest->epoch.load(std::memory_order_relaxed)
        << " phase=" << oldest->phase.load(std::memory_order_relaxed)
        << " arrived=" << std::popcount(arrivals) << "/"
        << shared_->options->num_variants
        << " drained=" << oldest->drained.load(std::memory_order_relaxed)
        << " parked=" << park_.parked();
    for (size_t v = 0; v < oldest->slots.size(); ++v) {
      if ((arrivals & (1u << v)) != 0) {
        out << " v" << v << "="
            << SysnoName(oldest->slots[v].sysno.load(std::memory_order_relaxed));
      }
    }
    return out.str();
  }
  std::unique_lock<std::mutex> lock(mutex_, std::try_to_lock);
  if (!lock.owns_lock()) {
    out << " <mutex busy>";
    return out.str();
  }
  out << " phase=" << (phase_ == Phase::kGather ? "gather" : "execute") << " arrived="
      << arrived_ << " drained=" << drained_ << " master_done=" << master_done_;
  for (size_t v = 0; v < requests_.size(); ++v) {
    if (requests_[v] != nullptr) {
      out << " v" << v << "=" << SysnoName(requests_[v]->sysno);
    }
  }
  return out.str();
}

void ThreadSetMonitor::NotifyShutdown() {
  // Empty critical section: serializes with any waiter's predicate check so
  // the notification cannot land in the unlock-to-sleep window. Callers must
  // never hold mutex_ when reporting (RunSyscall unlocks first).
  { std::lock_guard<std::mutex> lock(mutex_); }
  cv_.notify_all();
  // Slab waiters re-check reporter->tripped() on every spin step; this only
  // needs to lift the parked ones out of their slice sleeps.
  park_.WakeParked();
}

bool ThreadSetMonitor::MustCompare(const SyscallRequest& request) const {
  switch (shared_->options->policy) {
    case MonitorPolicy::kLockstepAll:
      return true;
    case MonitorPolicy::kLockstepSensitive:
      return SensitivityOf(request.sysno) == SyscallSensitivity::kSensitive;
  }
  return true;
}

std::string ThreadSetMonitor::CompareRound() const {
  const uint32_t n = shared_->options->num_variants;
  if (!MustCompare(*requests_[0])) {
    return "";
  }
  for (uint32_t v = 1; v < n; ++v) {
    if (requests_[v]->sysno != requests_[0]->sysno) {
      std::ostringstream detail;
      detail << "thread " << tid_ << ": syscall number mismatch: " << requests_[0]->ToString()
             << " (variant 0) vs " << requests_[v]->ToString() << " (variant " << v << ")";
      return detail.str();
    }
    if (digests_[v] != digests_[0]) {
      std::ostringstream detail;
      detail << "thread " << tid_ << ": argument mismatch on " << requests_[0]->ToString()
             << " (variant 0) vs " << requests_[v]->ToString() << " (variant " << v << ")";
      return detail.str();
    }
  }
  return "";
}

std::string ThreadSetMonitor::CompareSlabRound(const RoundSlab& slab) const {
  const uint32_t n = shared_->options->num_variants;
  if (!MustCompare(*slab.slots[0].request)) {
    return "";
  }
  for (uint32_t v = 1; v < n; ++v) {
    if (slab.slots[v].request->sysno != slab.slots[0].request->sysno) {
      std::ostringstream detail;
      detail << "thread " << tid_
             << ": syscall number mismatch: " << slab.slots[0].request->ToString()
             << " (variant 0) vs " << slab.slots[v].request->ToString() << " (variant " << v
             << ")";
      return detail.str();
    }
    if (slab.slots[v].digest != slab.slots[0].digest) {
      std::ostringstream detail;
      detail << "thread " << tid_ << ": argument mismatch on "
             << slab.slots[0].request->ToString() << " (variant 0) vs "
             << slab.slots[v].request->ToString() << " (variant " << v << ")";
      return detail.str();
    }
  }
  return "";
}

void ThreadSetMonitor::RouteSignals(const SyscallRequest& request, std::vector<int32_t>* out) {
  const bool is_kill = request.sysno == Sysno::kKill;
  // The exit round must take the lock even when nothing is pending: it
  // records this tid as gone so later kills aimed at it are dropped instead
  // of inflating pending_signal_count forever (once per thread, cold).
  const bool is_exit =
      request.sysno == Sysno::kExit || request.sysno == Sysno::kExitGroup;
  // Happy path: not a kill or exit, nothing pending anywhere — skip the
  // global mutex. A signal enqueued concurrently simply latches at this
  // thread set's next rendezvous (async delivery has no earlier deadline).
  if (!is_kill && !is_exit &&
      shared_->pending_signal_count.load(std::memory_order_acquire) == 0) {
    out->clear();
    return;
  }
  std::lock_guard<std::mutex> lock(shared_->signal_mutex);
  if (is_kill) {
    const auto target = static_cast<uint32_t>(request.arg0);
    // A kill aimed at an exited thread set has no future latch point; the
    // round decision happens once (opener/leader), so the drop is identical
    // in every variant.
    if (shared_->exited_tids.count(target) == 0) {
      shared_->pending_signals[target].push_back(static_cast<int32_t>(request.arg1));
      shared_->pending_signal_count.fetch_add(1, std::memory_order_release);
    }
  }
  if (is_exit) {
    shared_->exited_tids.insert(tid_);
  }
  auto pending = shared_->pending_signals.find(tid_);
  if (pending != shared_->pending_signals.end() && !pending->second.empty()) {
    out->assign(pending->second.begin(), pending->second.end());
    shared_->pending_signal_count.fetch_sub(pending->second.size(),
                                            std::memory_order_release);
    pending->second.clear();
  } else {
    out->clear();
  }
}

// Executes `request` in the ordering critical section of `domain`, stamping
// the (domain, timestamp) pair slaves replay against. `execute` performs the
// actual kernel call and returns its result.
template <typename ExecuteFn>
static SyscallResult StampOrdered(OrderDomain* domain, ExecuteFn&& execute) {
  std::lock_guard<std::mutex> order_lock(domain->mutex);
  SyscallResult result = execute();
  result.order_timestamp = domain->next_ts++;
  result.order_domain = domain->id;
  result.order_domain_hint = domain;
  return result;
}

// The ordering domain `request` is stamped in. Sharded mode partitions by
// resource (docs/syscall_ordering.md); the global-clock baseline maps every
// call to the single kFdNamespace domain, which reproduces the seed's cost
// profile exactly — one mutex, one counter, one replay clock per variant.
uint32_t ThreadSetMonitor::StampDomainOf(ProcessState& process, const SyscallRequest& request) {
  if (!shared_->options->sharded_order_domains) {
    return OrderDomainIds::kFdNamespace;
  }
  return shared_->kernel->OrderDomainOf(process, request);
}

SyscallResult ThreadSetMonitor::ExecuteMaster(SyscallRequest& request, SyscallClass klass,
                                              int64_t control_retval) {
  ProcessState& process = *shared_->processes[0];
  switch (klass) {
    case SyscallClass::kReplicated: {
      const bool ordering = shared_->options->order_resource_calls;
      // Descriptor-allocating replicated calls need their fd-table effect
      // ordered against the ordered open/close stream, or slave fd numbering
      // drifts: both stamp in the fd-namespace domain. sys_accept blocks, so
      // only its *allocation half* enters the critical section (two-phase
      // accept) — the §4.1 invariant (blocking never ordered) is preserved
      // because AcceptBlocking runs before any lock is taken; sys_socket is
      // non-blocking and runs entirely inside.
      if (ordering && request.sysno == Sysno::kAccept) {
        int64_t error = 0;
        auto conn = shared_->kernel->AcceptBlocking(process,
                                                    static_cast<int32_t>(request.arg0), &error);
        if (conn == nullptr) {
          SyscallResult result;
          result.retval = error;
          return result;
        }
        OrderDomain* domain =
            shared_->order_domains->FindOrCreate(OrderDomainIds::kFdNamespace);
        return StampOrdered(domain, [&] {
          SyscallResult result;
          result.retval = shared_->kernel->FinishAccept(process, std::move(conn));
          return result;
        });
      }
      if (ordering && request.sysno == Sysno::kSocket) {
        OrderDomain* domain =
            shared_->order_domains->FindOrCreate(OrderDomainIds::kFdNamespace);
        return StampOrdered(domain,
                            [&] { return shared_->kernel->Execute(process, request); });
      }
      // May block (I/O, futex). No ordering-clock critical section is held,
      // which is exactly why blocking calls must be in this class (§4.1
      // Limitations).
      return shared_->kernel->Execute(process, request);
    }

    case SyscallClass::kOrdered: {
      if (!shared_->options->order_resource_calls) {
        return shared_->kernel->Execute(process, request);
      }
      // Lamport timestamp under the resource domain's critical section:
      // conflicting calls replay in true execution order (§4.1), while —
      // under sharding — calls on disjoint resources no longer serialize
      // against each other (docs/syscall_ordering.md).
      const bool sharded = shared_->options->sharded_order_domains;
      OrderDomain* domain =
          shared_->order_domains->FindOrCreate(StampDomainOf(process, request));
      uint32_t retire_id = OrderDomainIds::kNone;
      SyscallResult result = StampOrdered(domain, [&] {
        // A close tears down its descriptor's per-fd domain; resolve the
        // victim inside the fd-namespace critical section (closes are
        // serialized here, so a racing double-close cannot retire a stale
        // id for a descriptor number that was already reused) and before
        // Execute frees the entry.
        if (sharded && request.sysno == Sysno::kClose) {
          retire_id = process.fds().OrderDomainOf(static_cast<int32_t>(request.arg0));
        }
        return shared_->kernel->Execute(process, request);
      });
      if (result.retval == 0 && retire_id != OrderDomainIds::kNone) {
        shared_->order_domains->Retire(retire_id);
      }
      return result;
    }

    case SyscallClass::kLocal:
      return shared_->kernel->Execute(process, request);

    case SyscallClass::kControl: {
      SyscallResult result;
      switch (request.sysno) {
        case Sysno::kMveeSelfAware:
          result.retval = 0;  // Master's variant index.
          break;
        case Sysno::kClone:
          result.retval = control_retval;
          break;
        default:
          result.retval = 0;
          break;
      }
      return result;
    }
  }
  return SyscallResult{};
}

std::atomic<uint64_t>& ThreadSetMonitor::SlaveClockFor(uint32_t variant,
                                                       const SyscallResult& master) {
  // The master stamps a direct domain pointer (stable until end-of-run
  // reclamation) so the replay hot path skips the table lookup.
  auto* domain = static_cast<OrderDomain*>(master.order_domain_hint);
  if (domain == nullptr) {
    domain = shared_->order_domains->FindOrCreate(master.order_domain);
  }
  return domain->SlaveClock(variant);
}

void ThreadSetMonitor::AwaitOrderClock(std::atomic<uint64_t>& clock, uint64_t want,
                                       uint32_t variant, const SyscallRequest& request,
                                       const char* what) {
  SpinWait waiter;
  DeadlineGate deadline(shared_->options->rendezvous_timeout);
  while (clock.load(std::memory_order_acquire) != want) {
    if (shared_->reporter->tripped()) {
      throw VariantKilled{};
    }
    if (deadline.Expired(waiter)) {
      std::ostringstream detail;
      detail << "thread " << tid_ << ": ordering clock stall in variant " << variant
             << " (at " << clock.load() << ", want " << want << ") " << what << " "
             << request.ToString();
      shared_->reporter->Report(StatusCode::kTimeout, detail.str());
      throw VariantKilled{};
    }
    waiter.Pause();
  }
}

int64_t ThreadSetMonitor::ExecuteSlave(uint32_t variant, SyscallRequest& request,
                                       SyscallClass klass, const SyscallResult& master,
                                       int64_t control_retval) {
  // Runs outside any round lock; reporting from here is safe.
  ProcessState& process = *shared_->processes[variant];
  switch (klass) {
    case SyscallClass::kReplicated: {
      // Copy only what this slave will consume: the payload prefix that fits
      // its own out buffer, straight from the master's pooled bytes.
      if (!master.out_payload.empty() && !request.out_data.empty()) {
        const size_t count = std::min(master.out_payload.size(), request.out_data.size());
        std::memcpy(request.out_data.data(), master.out_payload.data(), count);
      }
      // Shadow-fd installation must land at the same point of this variant's
      // ordered-call stream as the master's allocation did (see
      // ExecuteMaster's two-phase accept).
      const bool fd_allocating =
          request.sysno == Sysno::kAccept || request.sysno == Sysno::kSocket;
      if (fd_allocating && shared_->options->order_resource_calls && master.retval >= 0) {
        auto& clock = SlaveClockFor(variant, master);
        const uint64_t want = master.order_timestamp;
        AwaitOrderClock(clock, want, variant, request, "applying shadow fd for");
        const int64_t check = shared_->kernel->ApplyReplicatedEffect(process, request, master);
        clock.store(want + 1, std::memory_order_release);
        if (check != master.retval) {
          std::ostringstream detail;
          detail << "thread " << tid_ << ": shadow fd mismatch on " << SysnoName(request.sysno)
                 << ": master " << master.retval << " vs variant " << variant << " fd "
                 << check;
          shared_->reporter->Report(StatusCode::kDivergence, detail.str());
          throw VariantKilled{};
        }
        return master.retval;
      }
      const int64_t check = shared_->kernel->ApplyReplicatedEffect(process, request, master);
      if (fd_allocating && master.retval >= 0 && check != master.retval) {
        std::ostringstream detail;
        detail << "thread " << tid_ << ": shadow fd mismatch on " << SysnoName(request.sysno)
               << ": master " << master.retval << " vs variant " << variant << " fd " << check;
        shared_->reporter->Report(StatusCode::kDivergence, detail.str());
        throw VariantKilled{};
      }
      return master.retval;
    }

    case SyscallClass::kOrdered: {
      if (shared_->options->order_resource_calls) {
        // Spin until this variant's private ordering clock — per-domain under
        // sharding, variant-wide otherwise — reaches the recorded timestamp
        // (§4.1). Replays of calls on disjoint domains proceed in parallel.
        auto& clock = SlaveClockFor(variant, master);
        const uint64_t want = master.order_timestamp;
        AwaitOrderClock(clock, want, variant, request, "for");
        const int64_t retval = shared_->kernel->Execute(process, request).retval;
        clock.store(want + 1, std::memory_order_release);
        return retval;
      }
      return shared_->kernel->Execute(process, request).retval;
    }

    case SyscallClass::kLocal:
      return shared_->kernel->Execute(process, request).retval;

    case SyscallClass::kControl:
      switch (request.sysno) {
        case Sysno::kMveeSelfAware:
          return variant;
        case Sysno::kClone:
          return control_retval;
        default:
          return 0;
      }
  }
  return -1;
}

int64_t ThreadSetMonitor::RunSyscallLoose(uint32_t variant, SyscallRequest& request,
                                          std::vector<int32_t>* delivered_signals) {
  const SyscallClass klass = ClassOf(request.sysno);
  DivergenceReporter* reporter = shared_->reporter;
  if (reporter->tripped()) {
    throw VariantKilled{};
  }

  if (variant == 0) {
    // Leader: execute immediately into a pooled record, deposit it, never
    // wait for the followers (except for ring backpressure). The slot is
    // claimed BEFORE it is written: CanPush proves every follower has
    // advanced past this sequence, so recycling the pooled record cannot
    // race a straggling reader.
    request.PrimeComparableDigest();
    SpinWait waiter;
    while (!loose_ring_->CanPush()) {
      if (reporter->tripped()) {
        throw VariantKilled{};
      }
      waiter.Pause();
    }
    LooseRecord& record = loose_pool_[loose_ring_->WriteCursor() & loose_pool_mask_];
    record.signals.clear();
    record.payload.Clear();
    record.result = SyscallResult{};
    record.sysno = request.sysno;
    record.digest = request.ComparableDigest();
    record.control_retval = request.sysno == Sysno::kClone
                                ? shared_->next_tid.fetch_add(1, std::memory_order_relaxed)
                                : 0;
    counters_.Count(klass);
    // The leader's delivery point becomes everyone's: followers replay the
    // handler at the same record index.
    RouteSignals(request, &record.signals);
    if (delivered_signals != nullptr) {
      *delivered_signals = record.signals;
    }
    request.payload_pool = &record.payload;
    record.result = ExecuteMaster(request, klass, record.control_retval);
    const int64_t retval =
        klass == SyscallClass::kControl ? record.control_retval : record.result.retval;
    const bool pushed = loose_ring_->TryPush(&record);
    (void)pushed;  // CanPush held and there is a single producer.
    if (request.sysno == Sysno::kMveeSelfAware) {
      return 0;
    }
    return retval;
  }

  // Follower: consume the leader's next record for this thread set and
  // verify it matches this variant's call — asynchronously, possibly long
  // after the leader performed it.
  const size_t consumer = variant - 1;
  LooseRecord* record = nullptr;
  SpinWait waiter;
  DeadlineGate deadline(shared_->options->rendezvous_timeout);
  while (!loose_ring_->Peek(consumer, 0, &record)) {
    if (reporter->tripped()) {
      throw VariantKilled{};
    }
    if (deadline.Expired(waiter)) {
      reporter->Report(StatusCode::kTimeout,
                       "thread " + std::to_string(tid_) +
                           ": loose follower starved waiting for leader record");
      throw VariantKilled{};
    }
    waiter.Pause();
  }
  // The cursor must advance only after the record's last use: the slot (and
  // its pooled payload) is recycled by the leader once every consumer has
  // passed it. Advancing on the unwind path too is safe — a thrown
  // VariantKilled means the MVEE is shutting down.
  struct SlotGuard {
    BroadcastRing<LooseRecord*>* ring;
    size_t consumer;
    ~SlotGuard() { ring->Advance(consumer); }
  } guard{loose_ring_.get(), consumer};

  if (delivered_signals != nullptr) {
    *delivered_signals = record->signals;
  }

  if (record->sysno != request.sysno) {
    reporter->Report(StatusCode::kDivergence,
                     "thread " + std::to_string(tid_) + ": loose-mode syscall mismatch: leader " +
                         SysnoName(record->sysno) + " vs follower " + request.ToString());
    throw VariantKilled{};
  }
  if (MustCompare(request) && record->digest != request.ComparableDigest()) {
    reporter->Report(StatusCode::kDivergence,
                     "thread " + std::to_string(tid_) +
                         ": loose-mode argument mismatch on " + request.ToString());
    throw VariantKilled{};
  }
  if (klass == SyscallClass::kControl) {
    // Handle control calls from the record directly: the record's control
    // result was fixed by the leader at deposit time.
    switch (request.sysno) {
      case Sysno::kMveeSelfAware:
        return variant;
      case Sysno::kClone:
        return record->control_retval;
      default:
        return 0;
    }
  }
  return ExecuteSlave(variant, request, klass, record->result, record->control_retval);
}

template <typename Predicate>
bool ThreadSetMonitor::AwaitSlabState(Predicate&& ready, bool timed) {
  SpinWait waiter;
  DeadlineGate deadline(shared_->options->rendezvous_timeout);
  DivergenceReporter* reporter = shared_->reporter;
  for (;;) {
    if (ready()) {
      return true;
    }
    if (reporter->tripped()) {
      throw VariantKilled{};
    }
    if (waiter.spins() < kParkAfterSpins) {
      // The PAUSE phase (first 64 steps, nanoseconds) stays deadline-blind;
      // from the first yield on every step is already a syscall, so a clock
      // read per step costs comparatively nothing — and on an oversubscribed
      // host a yield can take milliseconds, so sparser checks would let the
      // deadline slip far past its budget (and let a late-arriving sibling
      // turn a timeout verdict into a bogus divergence).
      if (timed && waiter.spins() >= 64 && deadline.ExpiredNow()) {
        return false;
      }
      waiter.Pause();
      continue;
    }
    // Spin budget exhausted: futex-style parked wait. BeginPark / re-check /
    // WaitTicket is the lost-wakeup-free discipline documented in
    // util/park.h; publishers WakeParked after every phase/epoch store.
    park_.BeginPark();
    const uint64_t ticket = park_.Ticket();
    if (ready() || reporter->tripped()) {
      park_.EndPark();
      continue;
    }
    park_.WaitTicket(ticket, kParkSlice);
    park_.EndPark();
    // Re-check readiness before the deadline: a round that completed right
    // at the wire must win over a just-expired budget — the spin path and
    // the mutex baseline's cv predicates resolve the same race the same way.
    if (ready()) {
      return true;
    }
    if (timed && deadline.ExpiredNow()) {
      return false;
    }
  }
}

int64_t ThreadSetMonitor::RunSyscallSlab(uint32_t variant, SyscallRequest& request,
                                         std::vector<int32_t>* delivered_signals) {
  const SyscallClass klass = ClassOf(request.sysno);
  const uint32_t n = shared_->options->num_variants;
  DivergenceReporter* reporter = shared_->reporter;
  // A variant arriving after shutdown must unwind, not join (and possibly
  // open) a dead MVEE's round — e.g. the stalled sibling of a rendezvous
  // timeout waking up with its sys_exit.
  if (reporter->tripped()) {
    throw VariantKilled{};
  }

  // This variant's position in the round sequence is private state: exactly
  // one thread per variant serves a thread set, so no atomics are needed.
  const uint64_t round = cursors_[variant].next_round++;
  RoundSlab& slab = slabs_[round & kSlabRingMask];

  // 1. Recycle gate: the slab serves round `round` only once the last
  //    drainer of round `round - depth` re-armed it (release store on
  //    epoch). In steady state this is a single acquire load.
  if (!AwaitSlabState(
          [&] { return slab.epoch.load(std::memory_order_acquire) == round; },
          /*timed=*/true)) {
    reporter->Report(StatusCode::kTimeout,
                     "thread " + std::to_string(tid_) + ": previous round never drained");
    throw VariantKilled{};
  }

  // 2. Deposit + arrive. The acq_rel fetch_or makes every earlier arriver's
  //    plain slot writes visible to the last arriver (release sequence).
  request.PrimeComparableDigest();
  ArrivalSlot& slot = slab.slots[variant];
  slot.request = &request;
  slot.digest = request.ComparableDigest();
  slot.sysno.store(request.sysno, std::memory_order_relaxed);
  const uint32_t self_bit = 1u << variant;
  const uint32_t full = (1u << n) - 1;
  const uint32_t before = slab.arrivals.fetch_or(self_bit, std::memory_order_acq_rel);

  if ((before | self_bit) == full) {
    // Last arriver: compare in lockstep (§2). Divergence kills the MVEE.
    const std::string mismatch = CompareSlabRound(slab);
    if (!mismatch.empty()) {
      reporter->Report(StatusCode::kDivergence, mismatch);
      throw VariantKilled{};
    }
    // Control-call preprocessing shared by all variants.
    if (slab.slots[0].request->sysno == Sysno::kClone) {
      slab.control_retval = shared_->next_tid.fetch_add(1, std::memory_order_relaxed);
    }
    // Route signals exactly once per round: a kill enqueues for its target,
    // and anything pending for THIS thread set is latched so every variant
    // delivers at this same syscall boundary.
    RouteSignals(*slab.slots[0].request, &slab.signals);
    counters_.Count(klass);
    slab.phase.store(kRoundOpen, std::memory_order_release);
    park_.WakeParked();
    // 3a. Flat-combining master execution: the last arriver — whichever
    //     variant it belongs to — performs the master call itself, against
    //     the MASTER's deposited request (variant-local pointers: buffers,
    //     futex word, local_addr) and the master's process state. The
    //     virtual kernel is executor-agnostic, and combining saves the
    //     wake-the-master-then-wake-the-slaves double handoff per round —
    //     on oversubscribed hosts that halves the context switches. The
    //     result (payload in the slab's pooled buffer) is published with
    //     one release store; slaves read it in place — no per-slave clone,
    //     no allocation.
    SyscallRequest& master_request = *slab.slots[0].request;
    slab.payload.Clear();
    master_request.payload_pool = &slab.payload;
    slab.master_result = ExecuteMaster(master_request, klass, slab.control_retval);
    slab.phase.store(kRoundMasterDone, std::memory_order_release);
    park_.WakeParked();
  } else {
    // Lockstep: no variant proceeds until all variants made an equivalent
    // call (§2). A sibling that never arrives (e.g. divergence through an
    // uninstrumented sync op changed its control flow) trips the timeout.
    if (!AwaitSlabState(
            [&] { return slab.phase.load(std::memory_order_acquire) >= kRoundOpen; },
            /*timed=*/true)) {
      std::ostringstream detail;
      detail << "thread " << tid_ << ": lockstep rendezvous timeout at " << request.ToString()
             << " (variant " << variant << ", " << std::popcount(slab.arrivals.load()) << "/"
             << n << " arrived)";
      reporter->Report(StatusCode::kTimeout, detail.str());
      throw VariantKilled{};
    }
    // 3b. Untimed: the combined master call may legitimately block in the
    //     kernel (futex, accept) far longer than any rendezvous budget;
    //     shutdown still interrupts via reporter->tripped() + WakeParked.
    AwaitSlabState(
        [&] { return slab.phase.load(std::memory_order_acquire) >= kRoundMasterDone; },
        /*timed=*/false);
  }

  // 4a. Per-variant completion. The master's thread only picks up the
  //     published retval (its process state was already advanced by the
  //     combined execution); slave threads apply their local side effects.
  int64_t retval = 0;
  if (variant == 0) {
    retval = slab.master_result.retval;
  } else {
    retval = ExecuteSlave(variant, request, klass, slab.master_result, slab.control_retval);
  }

  // 4. Drain. Copy this round's latched signals out before retiring — the
  //    caller delivers them once the rendezvous is fully unwound.
  if (delivered_signals != nullptr) {
    *delivered_signals = slab.signals;
  }
  const uint32_t drained = slab.drained.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (drained == n) {
    // Last drainer: every variant's reads of the round state happened
    // before its drain increment (acq_rel chain), so plain resets are safe.
    for (auto& reset_slot : slab.slots) {
      reset_slot.request = nullptr;
      reset_slot.digest = 0;
    }
    slab.signals.clear();
    slab.master_result = SyscallResult{};
    slab.control_retval = 0;
    slab.arrivals.store(0, std::memory_order_relaxed);
    slab.drained.store(0, std::memory_order_relaxed);
    slab.phase.store(kRoundGather, std::memory_order_relaxed);
    // Re-arm for round + depth; the release publishes all resets to the
    // next round's arrivers (their recycle gate acquires epoch).
    slab.epoch.store(round + kSlabRingDepth, std::memory_order_release);
    park_.WakeParked();
  }
  return retval;
}

int64_t ThreadSetMonitor::RunSyscallMutex(uint32_t variant, SyscallRequest& request,
                                          std::vector<int32_t>* delivered_signals) {
  const SyscallClass klass = ClassOf(request.sysno);
  const uint32_t n = shared_->options->num_variants;
  const auto timeout = shared_->options->rendezvous_timeout;
  DivergenceReporter* reporter = shared_->reporter;

  std::unique_lock<std::mutex> lock(mutex_);

  // Wait for the previous round to fully drain.
  if (!cv_.wait_for(lock, timeout,
                    [&] { return phase_ == Phase::kGather || reporter->tripped(); })) {
    lock.unlock();
    reporter->Report(StatusCode::kTimeout,
                     "thread " + std::to_string(tid_) + ": previous round never drained");
    throw VariantKilled{};
  }
  if (reporter->tripped()) {
    throw VariantKilled{};
  }

  request.PrimeComparableDigest();
  requests_[variant] = &request;
  digests_[variant] = request.ComparableDigest();
  ++arrived_;

  if (arrived_ == n) {
    // Last arriver: compare in lockstep (§2). Divergence kills the MVEE.
    const std::string mismatch = CompareRound();
    if (!mismatch.empty()) {
      lock.unlock();
      reporter->Report(StatusCode::kDivergence, mismatch);
      throw VariantKilled{};
    }
    // Control-call preprocessing shared by all variants.
    if (requests_[0]->sysno == Sysno::kClone) {
      control_retval_ = shared_->next_tid.fetch_add(1, std::memory_order_relaxed);
    }
    // Route signals exactly once per round: a kill enqueues for its target,
    // and anything pending for THIS thread set is latched so every variant
    // delivers at this same syscall boundary.
    RouteSignals(*requests_[0], &round_signals_);
    counters_.Count(klass);
    phase_ = Phase::kExecute;
    cv_.notify_all();
  } else {
    // Lockstep: no variant proceeds until all variants made an equivalent
    // call (§2). A sibling that never arrives (e.g. divergence through an
    // uninstrumented sync op changed its control flow) trips the timeout.
    if (!cv_.wait_for(lock, timeout,
                      [&] { return phase_ == Phase::kExecute || reporter->tripped(); })) {
      std::ostringstream detail;
      detail << "thread " << tid_ << ": lockstep rendezvous timeout at " << request.ToString()
             << " (variant " << variant << ", " << arrived_ << "/" << n << " arrived)";
      lock.unlock();
      reporter->Report(StatusCode::kTimeout, detail.str());
      throw VariantKilled{};
    }
    if (reporter->tripped()) {
      throw VariantKilled{};
    }
  }

  int64_t retval = 0;
  if (variant == 0) {
    lock.unlock();
    mutex_payload_.Clear();
    request.payload_pool = &mutex_payload_;
    SyscallResult result = ExecuteMaster(request, klass, control_retval_);
    lock.lock();
    master_result_ = result;
    master_done_ = true;
    retval = master_result_.retval;
    cv_.notify_all();
  } else {
    cv_.wait(lock, [&] { return master_done_ || reporter->tripped(); });
    if (reporter->tripped()) {
      throw VariantKilled{};
    }
    // Snapshot the round's scalar result so the slave can leave the lock
    // (the round state may be reset by the time it finishes). The payload
    // is NOT cloned: the span views mutex_payload_, which is stable until
    // every variant drained — i.e. past this slave's last read.
    const SyscallResult master_copy = master_result_;
    const int64_t round_control_retval = control_retval_;
    lock.unlock();
    retval = ExecuteSlave(variant, request, klass, master_copy, round_control_retval);
    lock.lock();
  }

  // Copy this round's latched signals before the round state resets; the
  // caller delivers them once the rendezvous is fully unwound.
  if (delivered_signals != nullptr) {
    *delivered_signals = round_signals_;
  }

  ++drained_;
  if (drained_ == n) {
    arrived_ = 0;
    drained_ = 0;
    master_done_ = false;
    master_result_ = SyscallResult{};
    round_signals_.clear();
    std::fill(requests_.begin(), requests_.end(), nullptr);
    phase_ = Phase::kGather;
    cv_.notify_all();
  }
  return retval;
}

int64_t ThreadSetMonitor::RunSyscall(uint32_t variant, SyscallRequest& request,
                                     std::vector<int32_t>* delivered_signals) {
  if (shared_->options->sync_model == SyncModel::kLoose) {
    return RunSyscallLoose(variant, request, delivered_signals);
  }
  if (shared_->options->waitfree_rendezvous) {
    return RunSyscallSlab(variant, request, delivered_signals);
  }
  return RunSyscallMutex(variant, request, delivered_signals);
}

}  // namespace mvee
