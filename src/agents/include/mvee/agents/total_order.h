// Total-order (TO) replication agent (paper §4.5, Figure 4a).
//
// The master replays all sync ops into one global buffer in the exact order
// they executed; a global instrumentation lock held across each op makes
// (execute + record) atomic, so the recorded order equals the execution
// order. Slaves consume the buffer strictly front-to-back: a slave thread may
// execute its next sync op only when the front entry names that thread. Even
// unrelated critical sections are therefore serialized in the slaves — the
// "unnecessary stalls" the paper illustrates with the red bar in Figure 4(a).

#ifndef MVEE_AGENTS_TOTAL_ORDER_H_
#define MVEE_AGENTS_TOTAL_ORDER_H_

#include <atomic>
#include <memory>
#include <vector>

#include "mvee/agents/sync_agent.h"
#include "mvee/util/spsc_ring.h"

namespace mvee {

// Shared state: one broadcast ring, one global master lock.
class TotalOrderRuntime {
 public:
  TotalOrderRuntime(const AgentConfig& config, AgentControl control);

  // Creates the agent handle for variant `variant_index` (0 = master).
  std::unique_ptr<SyncAgent> CreateAgent(uint32_t variant_index);

  const AgentStats& stats() const { return stats_; }
  uint64_t OpsRecorded() const { return stats_.Aggregate().ops_recorded; }

 private:
  friend class TotalOrderAgent;

  struct Entry {
    uint32_t tid = 0;
  };

  AgentConfig config_;
  AgentControl control_;
  AgentStats stats_;
  BroadcastRing<Entry> ring_;
  std::atomic_flag master_lock_ = ATOMIC_FLAG_INIT;
  std::vector<size_t> consumer_ids_;  // consumer id per slave variant (index-1)
};

class TotalOrderAgent final : public SyncAgent {
 public:
  TotalOrderAgent(TotalOrderRuntime* runtime, AgentRole role, size_t consumer_id);

  void BeforeSyncOp(uint32_t tid, const void* addr) override;
  void AfterSyncOp(uint32_t tid, const void* addr) override;
  AgentRole role() const override { return role_; }
  const char* name() const override { return "total-order"; }

 private:
  TotalOrderRuntime* const runtime_;
  const AgentRole role_;
  const size_t consumer_id_;
  // Stats shard key: 0 for the master, consumer id + 1 for slaves.
  const uint32_t stats_variant_;
};

}  // namespace mvee

#endif  // MVEE_AGENTS_TOTAL_ORDER_H_
