// Wait-queue / readiness subsystem for the virtual kernel.
//
// The seed's ExecutePoll discovered readiness by polling: scan every fd,
// sleep 200us, scan again — burning a timeslice per wakeup and bounding
// poll latency at the sleep quantum. This module gives every waitable kernel
// object (pipe, connection, listener) a WaitQueue it notifies on state
// change, and gives blocking call sites a stack-allocated Waiter that can
// subscribe to any number of queues and park until one of them fires
// (docs/DESIGN.md §7). ShutdownBlockedCalls drains ONE registry: every
// waitable object registers itself in the kernel's WaitRegistry at creation
// and unregisters in its destructor, so MVEE teardown is "close every
// registered waitable, set the shutdown flag, wake everything" — no more
// per-kind weak_ptr lists that grow forever (the seed's VirtualKernel::pipes_
// leaked one expired weak_ptr per pipe ever created).
//
// Protocol (same Dekker discipline as util/park.h):
//   waiter:   Subscribe (seq_cst RMW on subscriber count) -> scan object
//             state -> Wait (parks only if no signal arrived since Prepare)
//   notifier: publish object state (release, under the object's own lock)
//             -> Notify (seq_cst fence; skip when nobody is subscribed)
// Either the waiter's scan observes the published state, or the notifier
// observes the subscriber and signals it. Every park is additionally bounded
// by a small slice, so even a missed edge degrades to slice-granularity
// polling instead of a hang.

#ifndef MVEE_VKERNEL_WAITQ_H_
#define MVEE_VKERNEL_WAITQ_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

#include "mvee/util/park.h"

namespace mvee {

class Waiter;
class WaitRegistry;

// Counters for the readiness subsystem (exposed through VirtualKernel::stats
// and MveeReport so "poll blocks on wakeups, not spins" is observable).
struct WaitStats {
  std::atomic<uint64_t> waits{0};         // parks that actually slept
  std::atomic<uint64_t> wakeups{0};       // parks ended by a queue signal
  std::atomic<uint64_t> shutdown_wakes{0};  // parks ended by registry shutdown
};

// Readiness signal hub embedded in a waitable object. Notify is cheap when
// nobody is subscribed (one fence + one load), which is the common case for
// every pipe write outside a poll.
class WaitQueue {
 public:
  WaitQueue() = default;
  WaitQueue(const WaitQueue&) = delete;
  WaitQueue& operator=(const WaitQueue&) = delete;

  // Wakes every subscribed waiter. Call after publishing the state change.
  void Notify();

 private:
  friend class Waiter;
  void Subscribe(Waiter* waiter);
  void Unsubscribe(Waiter* waiter);

  std::atomic<uint32_t> subscriber_count_{0};
  std::mutex mutex_;
  std::vector<Waiter*> subscribers_;
};

// One blocking call site (stack-allocated). Subscribe to the queues of the
// objects whose state you wait on, then loop { Prepare; scan; Wait }.
class Waiter {
 public:
  explicit Waiter(WaitRegistry* registry);
  ~Waiter();
  Waiter(const Waiter&) = delete;
  Waiter& operator=(const Waiter&) = delete;

  // Idempotent per queue; the subscription lasts until destruction. Callers
  // must keep the queue's owning object alive (hold a VRef) while subscribed.
  void Subscribe(WaitQueue* queue);

  // Consumes any pending signal. Call before re-scanning object state.
  void Prepare() { signaled_.store(0, std::memory_order_relaxed); }

  // Parks until a subscribed queue fires, `deadline` passes (when `timed`),
  // or the registry shuts down. Returns true if a signal/shutdown ended the
  // wait, false on deadline. Spurious slice-bounded returns report true.
  bool Wait(std::chrono::steady_clock::time_point deadline, bool timed);

  // True once the owning registry's ShutdownAll ran (never, with no
  // registry). Blocking loops must re-check this each iteration.
  bool ShutdownRequested() const;

 private:
  friend class WaitQueue;
  friend class WaitRegistry;
  void Signal();

  WaitRegistry* const registry_;
  std::atomic<uint32_t> signaled_{0};
  ParkingSpot spot_;
  std::vector<WaitQueue*> subscribed_;
};

// A kernel object whose blocked callers must be woken at MVEE teardown.
class Waitable {
 public:
  virtual ~Waitable();
  // Close/wake everything a caller could be blocked on. Called once per
  // object by WaitRegistry::ShutdownAll with the registry lock held; must
  // only take the object's own lock.
  virtual void ShutdownWake() = 0;

 protected:
  // Registers with `registry` (nullptr: standalone object, no registration).
  void RegisterWaitable(WaitRegistry* registry);

  // Every registered subclass MUST call this first thing in its own
  // destructor: the base-class destructor runs only after the derived
  // members are torn down, which would leave a window where ShutdownAll
  // finds the slot and invokes ShutdownWake on a half-destroyed object.
  // Blocks while a shutdown walk is in flight; idempotent.
  void UnregisterWaitable();

 private:
  friend class WaitRegistry;
  WaitRegistry* wait_registry_ = nullptr;
  size_t registry_slot_ = 0;
};

// The one registry ShutdownBlockedCalls drains. Slots are free-listed, so a
// workload that churns pipes/connections reuses entries instead of growing
// the table (the fix for the seed's unbounded pipes_ vector).
class WaitRegistry {
 public:
  WaitRegistry() = default;
  WaitRegistry(const WaitRegistry&) = delete;
  WaitRegistry& operator=(const WaitRegistry&) = delete;

  // Sets the shutdown flag, calls ShutdownWake on every live waitable, and
  // wakes every parked Waiter. Idempotent.
  void ShutdownAll();

  bool shutdown() const { return shutdown_.load(std::memory_order_acquire); }

  // Live registered waitables (diagnostics / leak tests).
  size_t LiveCount() const;
  // Total slots ever allocated; stays flat under churn thanks to the free
  // list (leak regression test).
  size_t SlotCount() const;

  WaitStats& stats() { return stats_; }

 private:
  friend class Waitable;
  friend class Waiter;
  void Register(Waitable* waitable);
  void Unregister(Waitable* waitable);
  void TrackWaiter(Waiter* waiter);
  void UntrackWaiter(Waiter* waiter);

  std::atomic<bool> shutdown_{false};
  mutable std::mutex mutex_;
  std::vector<Waitable*> slots_;  // nullptr = free
  std::vector<size_t> free_slots_;
  std::vector<Waiter*> waiters_;
  WaitStats stats_;
};

}  // namespace mvee

#endif  // MVEE_VKERNEL_WAITQ_H_
