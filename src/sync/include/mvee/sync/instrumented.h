// Instrumented atomic accesses.
//
// In the paper, a compiler pass wraps every instruction that accesses a sync
// variable in before_sync_op / after_sync_op calls (Listing 3). In this repo
// the "instrumented binary" is expressed directly: InstrumentedAtomic<T> is
// an atomic whose every access performs the wrapped sequence
//
//     before_sync_op(&v);  <atomic op>  after_sync_op(&v);
//
// against the agent installed in the current thread's SyncContext. Native
// runs (no context) hit the NullAgent: two non-virtual-inlineable calls that
// do nothing — the run-time analogue of the paper's weak-symbol no-op
// fallback (§4.4).

#ifndef MVEE_SYNC_INSTRUMENTED_H_
#define MVEE_SYNC_INSTRUMENTED_H_

#include <atomic>
#include <cstdint>

#include "mvee/agents/context.h"

namespace mvee {

template <typename T>
class InstrumentedAtomic {
 public:
  constexpr InstrumentedAtomic() : value_(T{}) {}
  constexpr explicit InstrumentedAtomic(T initial) : value_(initial) {}

  InstrumentedAtomic(const InstrumentedAtomic&) = delete;
  InstrumentedAtomic& operator=(const InstrumentedAtomic&) = delete;

  // Registers this variable for per-variable agent routing under `name`
  // (docs/DESIGN.md §11): call from code every variant executes, before the
  // first sync op. No-op under non-adaptive agents and native runs.
  void Bind(const char* name) const { BindSyncVariable(name, &value_); }

  // Type (iii) sync op: aligned load.
  T Load() const {
    SyncContext* ctx = SyncContext::Current();
    ctx->agent->BeforeSyncOp(ctx->tid, &value_);
    const T result = value_.load(std::memory_order_acquire);
    ctx->agent->AfterSyncOp(ctx->tid, &value_);
    return result;
  }

  // Type (iii) sync op: aligned store.
  void Store(T desired) {
    SyncContext* ctx = SyncContext::Current();
    ctx->agent->BeforeSyncOp(ctx->tid, &value_);
    value_.store(desired, std::memory_order_release);
    ctx->agent->AfterSyncOp(ctx->tid, &value_);
  }

  // Type (ii) sync op: XCHG.
  T Exchange(T desired) {
    SyncContext* ctx = SyncContext::Current();
    ctx->agent->BeforeSyncOp(ctx->tid, &value_);
    const T result = value_.exchange(desired, std::memory_order_acq_rel);
    ctx->agent->AfterSyncOp(ctx->tid, &value_);
    return result;
  }

  // Type (i) sync op: LOCK CMPXCHG.
  bool CompareExchange(T& expected, T desired) {
    SyncContext* ctx = SyncContext::Current();
    ctx->agent->BeforeSyncOp(ctx->tid, &value_);
    const bool result =
        value_.compare_exchange_strong(expected, desired, std::memory_order_acq_rel);
    ctx->agent->AfterSyncOp(ctx->tid, &value_);
    return result;
  }

  // Type (i) sync op: LOCK XADD.
  T FetchAdd(T delta) {
    SyncContext* ctx = SyncContext::Current();
    ctx->agent->BeforeSyncOp(ctx->tid, &value_);
    const T result = value_.fetch_add(delta, std::memory_order_acq_rel);
    ctx->agent->AfterSyncOp(ctx->tid, &value_);
    return result;
  }

  T FetchSub(T delta) {
    SyncContext* ctx = SyncContext::Current();
    ctx->agent->BeforeSyncOp(ctx->tid, &value_);
    const T result = value_.fetch_sub(delta, std::memory_order_acq_rel);
    ctx->agent->AfterSyncOp(ctx->tid, &value_);
    return result;
  }

  T FetchOr(T bits) {
    SyncContext* ctx = SyncContext::Current();
    ctx->agent->BeforeSyncOp(ctx->tid, &value_);
    const T result = value_.fetch_or(bits, std::memory_order_acq_rel);
    ctx->agent->AfterSyncOp(ctx->tid, &value_);
    return result;
  }

  // Raw access for the futex hook (kernel-side recheck; not a variant-code
  // sync op, so deliberately uninstrumented).
  const std::atomic<T>* raw() const { return &value_; }

 private:
  std::atomic<T> value_;
};

}  // namespace mvee

#endif  // MVEE_SYNC_INSTRUMENTED_H_
