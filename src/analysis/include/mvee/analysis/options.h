// Analysis engine knobs.
//
// Same baseline-toggle contract as AgentConfig::sharded_recording
// (MVEE_SHARDED_RECORDING) and friends: the production configuration is the
// default, the seed/textbook configuration stays in-binary behind a bool, an
// environment variable flips the default so whole test suites sweep the
// baseline without edits, and explicit assignments in code always win.

#ifndef MVEE_ANALYSIS_OPTIONS_H_
#define MVEE_ANALYSIS_OPTIONS_H_

#include <cstdlib>

namespace mvee {

// Default for AnalysisOptions::fast_solver: on, unless the environment
// forces the textbook baseline (MVEE_ANALYSIS_FAST_SOLVER=0).
inline bool DefaultFastSolver() {
  const char* env = std::getenv("MVEE_ANALYSIS_FAST_SOLVER");
  return env == nullptr || env[0] != '0';
}

struct AnalysisOptions {
  // On: Andersen solving uses the wave-propagation engine (sparse bitmaps,
  // difference propagation, online cycle collapse — wave_solver.h). Off: the
  // textbook std::set worklist solver. Both produce bit-identical points-to
  // solutions (tests/analysis_test.cc proves it per register); only cost
  // differs. bench_analysis.cc measures the gap and CI gates on it.
  bool fast_solver = DefaultFastSolver();
};

}  // namespace mvee

#endif  // MVEE_ANALYSIS_OPTIONS_H_
