// The virtual kernel: executes SyscallRequests against shared machine state
// and per-process state.
//
// This is the substitution for the real Linux kernel underneath the MVEE
// (see docs/DESIGN.md §2). The monitor is the only component that calls Execute;
// variant code always traps through the monitor first, which is what gives
// the MVEE its interposition point (paper Figure 1).
//
// Concurrency: every shared structure is sharded or lock-free on its hot
// path under `sharded` (docs/DESIGN.md §7) — striped VFS namespace with a
// per-thread handle cache, lock-free generation-tagged fd lookups, hashed
// futex shards with intrusive wait queues, per-thread-set counted RNG
// streams, and a wait-queue readiness subsystem that poll/accept block on
// instead of busy-polling. The seed's global-mutex implementations survive
// as the measurable in-run baseline (sharded = false / MVEE_SHARDED_VKERNEL=0),
// mirroring MveeOptions::waitfree_rendezvous and sharded_order_domains.

#ifndef MVEE_VKERNEL_VKERNEL_H_
#define MVEE_VKERNEL_VKERNEL_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "mvee/syscall/record.h"
#include "mvee/util/rng.h"
#include "mvee/vkernel/clock.h"
#include "mvee/vkernel/futex.h"
#include "mvee/vkernel/net.h"
#include "mvee/vkernel/process.h"
#include "mvee/vkernel/vfs.h"
#include "mvee/vkernel/vkernel_config.h"
#include "mvee/vkernel/waitq.h"

namespace mvee {

// Plain snapshot of the kernel's wait/readiness counters (MveeReport carries
// these so "poll blocks on wakeups, not spins" is observable in runs).
struct VKernelStatsSnapshot {
  uint64_t waitq_waits = 0;
  uint64_t waitq_wakeups = 0;
  uint64_t waitq_shutdown_wakes = 0;
};

// Calling conventions per sysno (args in SyscallRequest):
//   open(path, arg0=flags) -> fd
//   close(arg0=fd) -> 0
//   read(arg0=fd, out_data) -> n           write(arg0=fd, in_data) -> n
//   pread/pwrite(arg0=fd, arg1=off, ...) -> n
//   lseek(arg0=fd, arg1=off, arg2=whence{0,1,2}) -> new offset
//   stat(path) -> size                      unlink(path) -> 0
//   dup(arg0=fd) -> fd                      fcntl(arg0=fd, arg1=cmd) -> flags
//   pipe() -> read_fd | (write_fd << 32)
//   brk(arg0=increment) -> new break        mmap(arg0=len, arg1=prot) -> addr
//   munmap(local_addr, arg1=len) -> 0       mprotect(local_addr, arg1=len, arg2=prot) -> 0
//   futex(arg0=op, arg1=val, logical_addr, futex_word) -> 0 / -EAGAIN / woken count
//   socket() -> fd    bind(arg0=fd, arg1=port)    listen(arg0=fd, arg1=backlog)
//   accept(arg0=fd) -> fd   connect(arg0=fd, arg1=port) -> 0
//   send(arg0=fd, in_data) -> n   recv(arg0=fd, out_data) -> n   shutdown(arg0=fd)
//   gettimeofday() -> usec   clock_gettime() -> nsec   rdtsc -> tsc
//   nanosleep(arg0=nsec) -> 0               getrandom(out_data) -> n
//   getpid() -> logical pid                 gettid(arg0=logical tid) -> arg0
//   clone() -> new kernel tid               sched_yield() -> 0
class VirtualKernel {
 public:
  explicit VirtualKernel(uint64_t rng_seed = 42, bool sharded = DefaultShardedVkernel());

  // Executes one syscall for `process`. Thread-safe.
  SyscallResult Execute(ProcessState& process, const SyscallRequest& request);

  // Two-phase accept for the monitor: sys_accept both blocks *and* allocates
  // a descriptor. The blocking half must run outside the syscall-ordering
  // critical section (§4.1 forbids ordering blocking calls) while the fd
  // allocation must run inside it, or slave fd tables drift relative to
  // ordered close/open traffic. AcceptBlocking performs only the wait (on
  // the listener's wait queue under the sharded mode, on the listener's
  // condvar otherwise); FinishAccept installs the descriptor (fast,
  // order-section safe).
  VRef<VConnection> AcceptBlocking(ProcessState& process, int32_t listen_fd, int64_t* error);
  int64_t FinishAccept(ProcessState& process, VRef<VConnection> conn);

  // Applies the side effects of a master-executed (replicated) syscall to a
  // slave process: advances file offsets, installs shadow descriptors for
  // accept/connect. Returns the slave-local result that must match the
  // master's (e.g. the shadow fd number) or 0 when there is nothing to check.
  int64_t ApplyReplicatedEffect(ProcessState& process, const SyscallRequest& request,
                                const SyscallResult& master_result);

  // The syscall-ordering domain `request` conflicts on, resolved against
  // `process`'s descriptor table (docs/syscall_ordering.md): per-fd domain
  // for descriptor-scoped ops (lseek/fcntl), kMemory for address-space ops,
  // kProcess for clone, kFdNamespace for everything that mutates or scans
  // the fd/path namespace. Called by the master monitor only; slaves take
  // the domain id from the master's stamped result.
  uint32_t OrderDomainOf(ProcessState& process, const SyscallRequest& request);

  // Wakes/closes everything a variant thread could be blocked on; used by
  // the monitor when tearing the variants down after a divergence. Drains
  // ONE registry: every waitable object (pipe, connection, listener, the
  // futex table) registered itself at creation (waitq.h).
  void ShutdownBlockedCalls();

  // Watchdog escalation stage 2 (docs/DESIGN.md §9): wakes every futex
  // waiter WITHOUT closing anything. Futex semantics permit spurious wakes
  // (waiters re-check their word and re-queue), so a nudge against a healthy
  // run is harmless — and it is the sound remedy for a lost wakeup, where
  // the dropped signal left the waiters queued forever.
  void NudgeBlockedCalls();

  Vfs& vfs() { return vfs_; }
  VirtualNetwork& network() { return network_; }
  VirtualClock& clock() { return clock_; }
  FutexTable& futexes() { return futexes_; }
  WaitRegistry& wait_registry() { return wait_registry_; }
  bool sharded() const { return sharded_; }

  VKernelStatsSnapshot stats() const {
    // Const-correct read of the registry's relaxed counters.
    auto& stats = const_cast<VirtualKernel*>(this)->wait_registry_.stats();
    VKernelStatsSnapshot snapshot;
    snapshot.waitq_waits = stats.waits.load(std::memory_order_relaxed);
    snapshot.waitq_wakeups = stats.wakeups.load(std::memory_order_relaxed);
    snapshot.waitq_shutdown_wakes = stats.shutdown_wakes.load(std::memory_order_relaxed);
    return snapshot;
  }

 private:
  SyscallResult ExecuteFile(ProcessState& process, const SyscallRequest& request);
  SyscallResult ExecuteMemory(ProcessState& process, const SyscallRequest& request);
  SyscallResult ExecuteNet(ProcessState& process, const SyscallRequest& request);
  SyscallResult ExecutePoll(ProcessState& process, const SyscallRequest& request);
  SyscallResult ExecutePollLegacy(ProcessState& process, const SyscallRequest& request);
  SyscallResult ExecuteTime(const SyscallRequest& request);
  SyscallResult ExecuteGetrandom(const SyscallRequest& request);

  // Scans the poll set once. Returns the ready count; `waiter`, when
  // non-null, is subscribed to every waitable fd's queue before its state is
  // read (the subscribe-then-scan ordering the wakeup protocol needs).
  int64_t ScanPollSet(ProcessState& process, const SyscallRequest& request,
                      uint8_t* revents_buf, size_t nfds, Waiter* waiter,
                      std::vector<VRef<VObject>>* pinned);

  // Per-thread-set counted RNG streams: getrandom from logical tid T draws
  // from stream T, so concurrent thread sets never serialize on one lock —
  // and each stream's sequence depends only on (seed, tid, draw index),
  // which makes traces reproducible regardless of cross-thread timing. The
  // monitor's rendezvous guarantees at most one in-flight syscall per thread
  // set, so a stream needs no lock at all. Streams beyond the static range
  // and the non-sharded baseline share rng_ under rng_mutex_.
  static constexpr uint32_t kRngStreams = 256;
  struct alignas(64) RngStream {
    Rng rng;
  };

  const bool sharded_;
  WaitRegistry wait_registry_;
  Vfs vfs_;
  VirtualNetwork network_;
  VirtualClock clock_;
  FutexTable futexes_;
  std::mutex rng_mutex_;
  Rng rng_;
  RngStream rng_streams_[kRngStreams];
};

}  // namespace mvee

#endif  // MVEE_VKERNEL_VKERNEL_H_
