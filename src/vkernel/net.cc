#include "mvee/vkernel/net.h"

#include <algorithm>
#include <cerrno>

namespace mvee {

int64_t ByteStream::Read(uint8_t* out, uint64_t size) {
  std::unique_lock<std::mutex> lock(mutex_);
  readable_.wait(lock, [&] { return !buffer_.empty() || closed_; });
  if (buffer_.empty()) {
    return 0;
  }
  const uint64_t n = std::min<uint64_t>(size, buffer_.size());
  for (uint64_t i = 0; i < n; ++i) {
    out[i] = buffer_.front();
    buffer_.pop_front();
  }
  writable_.notify_all();
  return static_cast<int64_t>(n);
}

int64_t ByteStream::Write(const uint8_t* data, uint64_t size) {
  std::unique_lock<std::mutex> lock(mutex_);
  uint64_t written = 0;
  while (written < size) {
    writable_.wait(lock, [&] { return buffer_.size() < capacity_ || closed_; });
    if (closed_) {
      return -ECONNRESET;
    }
    const uint64_t room = capacity_ - buffer_.size();
    const uint64_t n = std::min(room, size - written);
    buffer_.insert(buffer_.end(), data + written, data + written + n);
    written += n;
    readable_.notify_all();
  }
  return static_cast<int64_t>(written);
}

void ByteStream::Close() {
  std::lock_guard<std::mutex> lock(mutex_);
  closed_ = true;
  readable_.notify_all();
  writable_.notify_all();
}

bool ByteStream::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

bool ByteStream::Readable() const {
  std::lock_guard<std::mutex> lock(mutex_);
  // Data available, or EOF readable immediately (Read returns 0).
  return !buffer_.empty() || closed_;
}

bool ByteStream::Writable() const {
  std::lock_guard<std::mutex> lock(mutex_);
  // Space available, or the write fails immediately (-ECONNRESET): either
  // way a Write would not block — POSIX poll reports closed sockets as
  // writable so callers discover the error.
  return buffer_.size() < capacity_ || closed_;
}

int64_t VListener::PushConnection(std::shared_ptr<VConnection> conn) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (closed_ || pending_.size() >= static_cast<size_t>(backlog_)) {
    return -ECONNREFUSED;
  }
  pending_.push_back(std::move(conn));
  pending_cv_.notify_one();
  return 0;
}

std::shared_ptr<VConnection> VListener::Accept() {
  std::unique_lock<std::mutex> lock(mutex_);
  pending_cv_.wait(lock, [&] { return !pending_.empty() || closed_; });
  if (pending_.empty()) {
    return nullptr;
  }
  auto conn = pending_.front();
  pending_.pop_front();
  return conn;
}

bool VListener::HasPending() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !pending_.empty() || closed_;
}

void VListener::Close() {
  std::lock_guard<std::mutex> lock(mutex_);
  closed_ = true;
  pending_cv_.notify_all();
}

int64_t VirtualNetwork::Listen(uint16_t port, int backlog, std::shared_ptr<VListener>* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (listeners_.count(port) != 0) {
    return -EADDRINUSE;
  }
  auto listener = std::make_shared<VListener>(backlog);
  listeners_[port] = listener;
  *out = listener;
  return 0;
}

std::shared_ptr<VConnection> VirtualNetwork::Connect(uint16_t port) {
  std::shared_ptr<VListener> listener;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = listeners_.find(port);
    if (it == listeners_.end()) {
      return nullptr;
    }
    listener = it->second;
  }
  auto conn = std::make_shared<VConnection>();
  if (listener->PushConnection(conn) != 0) {
    return nullptr;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    connections_.push_back(conn);
  }
  return conn;
}

void VirtualNetwork::CloseAll() {
  std::map<uint16_t, std::shared_ptr<VListener>> listeners;
  std::vector<std::weak_ptr<VConnection>> connections;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    listeners.swap(listeners_);
    connections.swap(connections_);
  }
  for (auto& [port, listener] : listeners) {
    listener->Close();
  }
  for (auto& weak : connections) {
    if (auto conn = weak.lock()) {
      conn->CloseBoth();
    }
  }
}

void VirtualNetwork::CloseListener(uint16_t port) {
  std::shared_ptr<VListener> listener;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = listeners_.find(port);
    if (it == listeners_.end()) {
      return;
    }
    listener = it->second;
    listeners_.erase(it);
  }
  listener->Close();
}

}  // namespace mvee
