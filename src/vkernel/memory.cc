#include "mvee/vkernel/memory.h"

#include <cerrno>

namespace mvee {

AddressSpace::AddressSpace(uint64_t heap_base, uint64_t map_base)
    : heap_base_(heap_base), map_base_(map_base), brk_(heap_base), map_cursor_(map_base) {}

int64_t AddressSpace::Brk(int64_t increment, uint64_t* new_break) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (increment == 0) {
    *new_break = brk_;
    return 0;
  }
  const int64_t target = static_cast<int64_t>(brk_) + increment;
  if (target < static_cast<int64_t>(heap_base_) ||
      static_cast<uint64_t>(target) >= map_base_) {
    return -ENOMEM;
  }
  brk_ = static_cast<uint64_t>(target);
  *new_break = brk_;
  return 0;
}

int64_t AddressSpace::Mmap(uint64_t length, int64_t prot, uint64_t* addr) {
  if (length == 0) {
    return -EINVAL;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const uint64_t aligned = PageAlignUp(length);
  const uint64_t at = map_cursor_;
  map_cursor_ += aligned + kPageSize;  // Guard page between mappings.
  regions_[at] = Region{aligned, prot};
  *addr = at;
  return 0;
}

int64_t AddressSpace::Munmap(uint64_t addr, uint64_t length) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = regions_.find(addr);
  if (it == regions_.end() || it->second.length != PageAlignUp(length)) {
    return -EINVAL;
  }
  regions_.erase(it);
  return 0;
}

int64_t AddressSpace::Mprotect(uint64_t addr, uint64_t length, int64_t prot) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = regions_.find(addr);
  if (it == regions_.end() || PageAlignUp(length) > it->second.length) {
    return -ENOMEM;
  }
  it->second.prot = prot;
  return 0;
}

uint64_t AddressSpace::current_break() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return brk_;
}

size_t AddressSpace::MappingCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return regions_.size();
}

int64_t AddressSpace::ProtOf(uint64_t addr) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = regions_.find(addr);
  if (it == regions_.end()) {
    return -1;
  }
  return it->second.prot;
}

uint64_t AddressSpace::BytesMapped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t total = 0;
  for (const auto& [addr, region] : regions_) {
    total += region.length;
  }
  return total;
}

}  // namespace mvee
