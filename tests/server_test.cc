// Tests for the nginx-style use case (paper §5.5): native serving, MVEE
// serving with instrumented custom sync ops, divergence with uninstrumented
// custom sync ops under load, and attack detection.

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "mvee/monitor/mvee.h"
#include "mvee/monitor/native.h"
#include "mvee/server/http_server.h"
#include "mvee/server/wrk.h"

namespace mvee {
namespace {

// Runs the server program in `runner_fn` while generating `wrk` load from a
// client thread; returns the wrk result.
template <typename RunFn>
WrkResult ServeAndMeasure(VirtualKernel& kernel, const WrkOptions& wrk_options, RunFn serve) {
  WrkResult result;
  std::thread client([&] {
    // Wait for the listener to appear; the successful probe consumes one
    // accept slot (callers budget for it) and is closed so the worker that
    // receives it sees EOF and serves an empty request.
    VRef<VConnection> probe;
    while ((probe = kernel.network().Connect(wrk_options.port)) == nullptr) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    probe->CloseClientSide();
    result = RunWrk(kernel, wrk_options);
  });
  serve();
  client.join();
  return result;
}

ServerConfig SmallServer(uint16_t port, bool instrument, bool vuln = false) {
  ServerConfig config;
  config.port = port;
  config.pool_threads = 4;
  config.page_bytes = 512;
  config.instrument_custom_sync = instrument;
  config.enable_vulnerability = vuln;
  return config;
}

TEST(HttpServerTest, NativeServesRequests) {
  NativeRunner runner;
  ServerConfig config = SmallServer(8080, /*instrument=*/true);
  config.connection_budget = 21;  // 20 wrk requests + 1 probe.

  WrkOptions wrk;
  wrk.port = 8080;
  wrk.connections = 4;
  wrk.requests_per_conn = 5;
  wrk.path = "/index.html";

  const WrkResult result = ServeAndMeasure(runner.kernel(), wrk, [&] {
    ASSERT_TRUE(runner.Run(MakeServerProgram(config)).ok());
  });
  EXPECT_EQ(result.responses_ok, 20u);
  EXPECT_GT(result.bytes_received, 20u * 512u);
}

TEST(HttpServerTest, MveeInstrumentedServesWithoutDivergence) {
  MveeOptions options;
  options.num_variants = 2;
  options.agent = AgentKind::kWallOfClocks;
  options.rendezvous_timeout = std::chrono::milliseconds(60000);
  options.agent_config.replay_deadline = std::chrono::milliseconds(60000);
  Mvee mvee(options);

  ServerConfig config = SmallServer(8081, /*instrument=*/true);
  config.connection_budget = 21;

  WrkOptions wrk;
  wrk.port = 8081;
  wrk.connections = 4;
  wrk.requests_per_conn = 5;

  Status status;
  const WrkResult result = ServeAndMeasure(mvee.kernel(), wrk, [&] {
    status = mvee.Run(MakeServerProgram(config));
  });
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(result.responses_ok, 20u);
}

TEST(HttpServerTest, UninstrumentedCustomSyncDivergesUnderLoad) {
  // §5.5: "if we do not instrument these custom synchronization primitives,
  // nginx does not function correctly when running multiple variants. The
  // server does start up normally, but quickly triggers a divergence when
  // network traffic starts flowing in." Racing request-id updates through
  // the raw spinlock produce mismatching response headers.
  int divergences = 0;
  for (int round = 0; round < 10 && divergences == 0; ++round) {
    MveeOptions options;
    options.num_variants = 2;
    options.agent = AgentKind::kWallOfClocks;
    options.rendezvous_timeout = std::chrono::milliseconds(15000);
    options.agent_config.replay_deadline = std::chrono::milliseconds(15000);
    options.seed = 77 + round;
    // This demonstration needs scheduler-driven wakeup nondeterminism to
    // expose the race. The wait-free rendezvous's spin-yield handoff resumes
    // variant threads in an identical order every round on small hosts,
    // which (deliberately) suppresses exactly the benign-divergence noise
    // this test fishes for — so run it on the mutex baseline. The same
    // uninstrumented-sync divergence property under the wait-free protocol
    // is covered by MveeSyncTest.UninstrumentedRacyOrderEventuallyDiverges.
    options.waitfree_rendezvous = false;
    Mvee mvee(options);

    ServerConfig config = SmallServer(static_cast<uint16_t>(8090 + round),
                                      /*instrument=*/false);
    config.connection_budget = 41;

    WrkOptions wrk;
    wrk.port = config.port;
    wrk.connections = 8;
    wrk.requests_per_conn = 5;

    Status status;
    ServeAndMeasure(mvee.kernel(), wrk, [&] { status = mvee.Run(MakeServerProgram(config)); });
    if (!status.ok()) {
      ++divergences;
    }
  }
  EXPECT_GT(divergences, 0);
}

TEST(HttpServerTest, AttackSucceedsNatively) {
  // Against a single (unprotected) server instance, the tailored exploit
  // leaks the secret — the baseline the paper establishes before showing
  // the MVEE stops it.
  NativeRunner runner;
  ServerConfig config = SmallServer(8100, /*instrument=*/true, /*vuln=*/true);
  config.connection_budget = 2;  // probe + attack

  AttackResult attack;
  std::thread client([&] {
    VRef<VConnection> probe;
    while ((probe = runner.kernel().network().Connect(8100)) == nullptr) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    probe->CloseClientSide();
    // The native runner's diversity map is the victim layout the attacker
    // "leaked".
    const uint64_t victim_base = DiversityMap(0, 0x5eedULL, true).map_base();
    attack = RunAttack(runner.kernel(), 8100, victim_base);
  });
  ASSERT_TRUE(runner.Run(MakeServerProgram(config)).ok());
  client.join();
  EXPECT_TRUE(attack.connected);
  EXPECT_TRUE(attack.secret_leaked);
}

TEST(HttpServerTest, MveeDetectsAttackBeforeLeak) {
  // With >= 2 diversified variants, the exploit only matches one variant's
  // layout; the variants' responses differ and the MVEE kills them before
  // the secret is sent (§5.5: "our MVEE detected divergence and shut down
  // all variants before the system could be compromised").
  MveeOptions options;
  options.num_variants = 2;
  options.enable_aslr = true;
  options.agent = AgentKind::kWallOfClocks;
  options.rendezvous_timeout = std::chrono::milliseconds(15000);
  options.agent_config.replay_deadline = std::chrono::milliseconds(15000);
  Mvee mvee(options);

  ServerConfig config = SmallServer(8101, /*instrument=*/true, /*vuln=*/true);
  config.connection_budget = 2;

  AttackResult attack;
  Status status;
  std::thread client([&] {
    VRef<VConnection> probe;
    while ((probe = mvee.kernel().network().Connect(8101)) == nullptr) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    probe->CloseClientSide();
    // Attacker tailored the payload to the master variant's layout.
    const uint64_t master_base = DiversityMap(0, options.seed, true).map_base();
    attack = RunAttack(mvee.kernel(), 8101, master_base);
  });
  status = mvee.Run(MakeServerProgram(config));
  client.join();

  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDivergence);
  EXPECT_FALSE(attack.secret_leaked);
}

// --- Event-loop conformance (docs/DESIGN.md §10) -----------------------------

// Reads from `conn` until one full response parses out of `in`; returns false
// if the stream closes or produces garbage first. Complete responses are
// erased from the front of `in`, so pipelined follow-ups stay intact.
bool ReadOneResponse(VConnection& conn, std::string& in, HttpResponse* out) {
  uint8_t buffer[4096];
  for (;;) {
    const HttpParseStatus status = TryParseHttpResponse(in, out);
    if (status == HttpParseStatus::kComplete) {
      in.erase(0, out->total_bytes);
      return true;
    }
    if (status == HttpParseStatus::kMalformed) {
      return false;
    }
    const int64_t n = conn.ClientRead(buffer, sizeof(buffer));
    if (n <= 0) {
      return false;
    }
    in.append(reinterpret_cast<const char*>(buffer), static_cast<size_t>(n));
  }
}

bool WriteAll(VConnection& conn, const std::string& data) {
  return conn.ClientWrite(reinterpret_cast<const uint8_t*>(data.data()), data.size()) ==
         static_cast<int64_t>(data.size());
}

// Drains `conn` and reports whether the server actually closed it (as opposed
// to hanging with the connection open).
bool ServerClosed(VConnection& conn, std::string& in) {
  uint8_t buffer[512];
  for (;;) {
    const int64_t n = conn.ClientRead(buffer, sizeof(buffer));
    if (n <= 0) {
      return true;
    }
    in.append(reinterpret_cast<const char*>(buffer), static_cast<size_t>(n));
    if (in.size() > (1u << 20)) {
      return false;
    }
  }
}

// Runs a native event-loop server (pinned on, regardless of the
// MVEE_SERVER_EVENT_LOOP sweep) and a raw-socket client against it.
// `budget` must count the readiness probe.
template <typename ClientFn>
void WithNativeEventServer(uint16_t port, uint32_t budget, ClientFn client_fn) {
  NativeRunner runner;
  ServerConfig config = SmallServer(port, /*instrument=*/true);
  config.use_event_loop = true;
  config.connection_budget = budget;
  std::thread client([&] {
    VRef<VConnection> probe;
    while ((probe = runner.kernel().network().Connect(port)) == nullptr) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    probe->CloseClientSide();
    client_fn(runner.kernel());
  });
  EXPECT_TRUE(runner.Run(MakeServerProgram(config)).ok());
  client.join();
}

TEST(EventLoopTest, KeepAliveReusesOneConnection) {
  WithNativeEventServer(8200, /*budget=*/2, [](VirtualKernel& kernel) {
    auto conn = kernel.network().Connect(8200);
    ASSERT_NE(conn, nullptr);
    std::string in;
    uint64_t last_id = 0;
    // Five sequential requests over the SAME connection: HTTP/1.1 defaults
    // to keep-alive, so the server must not close between them.
    for (int r = 0; r < 5; ++r) {
      ASSERT_TRUE(WriteAll(*conn, "GET /index.html HTTP/1.1\r\nHost: mvee\r\n\r\n"));
      HttpResponse response;
      ASSERT_TRUE(ReadOneResponse(*conn, in, &response)) << "request " << r;
      EXPECT_EQ(response.status, 200);
      EXPECT_EQ(response.body.size(), 512u);
      EXPECT_GT(response.request_id, last_id);
      last_id = response.request_id;
    }
    conn->CloseClientSide();
  });
}

TEST(EventLoopTest, PipelinedRequestsAnsweredInOrder) {
  WithNativeEventServer(8201, /*budget=*/2, [](VirtualKernel& kernel) {
    auto conn = kernel.network().Connect(8201);
    ASSERT_NE(conn, nullptr);
    // Four requests in a single write; the responses must come back complete
    // and in order, with consecutive request ids (this is the only live
    // connection, so the ids show per-connection FIFO handling).
    std::string burst;
    for (int r = 0; r < 4; ++r) {
      burst += "GET /index.html HTTP/1.1\r\nHost: mvee\r\n\r\n";
    }
    ASSERT_TRUE(WriteAll(*conn, burst));
    std::string in;
    std::vector<uint64_t> ids;
    for (int r = 0; r < 4; ++r) {
      HttpResponse response;
      ASSERT_TRUE(ReadOneResponse(*conn, in, &response)) << "response " << r;
      EXPECT_EQ(response.status, 200);
      ids.push_back(response.request_id);
    }
    for (size_t i = 1; i < ids.size(); ++i) {
      EXPECT_EQ(ids[i], ids[i - 1] + 1);
    }
    conn->CloseClientSide();
  });
}

TEST(EventLoopTest, MalformedRequestLineGets400AndClose) {
  WithNativeEventServer(8202, /*budget=*/2, [](VirtualKernel& kernel) {
    auto conn = kernel.network().Connect(8202);
    ASSERT_NE(conn, nullptr);
    ASSERT_TRUE(WriteAll(*conn, "BOGUS\r\n\r\n"));
    std::string in;
    HttpResponse response;
    ASSERT_TRUE(ReadOneResponse(*conn, in, &response));
    EXPECT_EQ(response.status, 400);
    EXPECT_TRUE(ServerClosed(*conn, in));
    conn->CloseClientSide();
  });
}

TEST(EventLoopTest, OversizedHeadersGet413AndClose) {
  WithNativeEventServer(8203, /*budget=*/2, [](VirtualKernel& kernel) {
    auto conn = kernel.network().Connect(8203);
    ASSERT_NE(conn, nullptr);
    // 70 KiB of headers with no terminator: past max_request_bytes the
    // server must answer 413 and close — not hang waiting for the end, and
    // not silently truncate.
    std::string oversized = "GET /index.html HTTP/1.1\r\nX-Junk: ";
    oversized.append(70 * 1024, 'a');
    ASSERT_TRUE(WriteAll(*conn, oversized));
    std::string in;
    HttpResponse response;
    ASSERT_TRUE(ReadOneResponse(*conn, in, &response));
    EXPECT_EQ(response.status, 413);
    EXPECT_TRUE(ServerClosed(*conn, in));
    conn->CloseClientSide();
  });
}

TEST(EventLoopTest, MveeOpenLoopKeepAliveServesAll) {
  // The open-loop harness against a 2-variant MVEE: keep-alive + pipelining
  // through the replicated poll/recv path. Every request must be answered
  // and the ids must be a permutation of 1..N (nothing lost, nothing
  // duplicated across the pool workers).
  MveeOptions options;
  options.num_variants = 2;
  options.agent = AgentKind::kWallOfClocks;
  options.rendezvous_timeout = std::chrono::milliseconds(60000);
  options.agent_config.replay_deadline = std::chrono::milliseconds(60000);
  Mvee mvee(options);

  ServerConfig config = SmallServer(8204, /*instrument=*/true);
  config.use_event_loop = true;
  config.connection_budget = 17;  // 16 open-loop connections + 1 probe.

  OpenLoopOptions load;
  load.port = 8204;
  load.connections = 16;
  load.requests_per_conn = 4;
  load.pipeline_depth = 2;
  load.arrival_rate = 4000.0;
  load.client_threads = 2;
  load.collect_request_ids = true;

  Status status;
  OpenLoopResult result;
  std::thread client([&] {
    VRef<VConnection> probe;
    while ((probe = mvee.kernel().network().Connect(8204)) == nullptr) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    probe->CloseClientSide();
    result = RunWrkOpenLoop(mvee.kernel(), load);
  });
  status = mvee.Run(MakeServerProgram(config));
  client.join();

  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(result.responses_ok, 64u);
  EXPECT_EQ(result.responses_non2xx, 0u);
  EXPECT_EQ(result.responses_truncated, 0u);
  EXPECT_EQ(result.latency_ns.Count(), 64u);

  std::vector<uint64_t> ids = result.request_ids;
  std::sort(ids.begin(), ids.end());
  ASSERT_EQ(ids.size(), 64u);
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], i + 1) << "request ids are not a permutation of 1..N";
  }
}

TEST(EventLoopTest, MveeDetectsAttackUnderEventLoop) {
  // The §5.5 attack/divergence property must survive the serving-path
  // rewrite: pinned use_event_loop so this holds even when the suite sweeps
  // MVEE_SERVER_EVENT_LOOP=0.
  MveeOptions options;
  options.num_variants = 2;
  options.enable_aslr = true;
  options.agent = AgentKind::kWallOfClocks;
  options.rendezvous_timeout = std::chrono::milliseconds(15000);
  options.agent_config.replay_deadline = std::chrono::milliseconds(15000);
  Mvee mvee(options);

  ServerConfig config = SmallServer(8205, /*instrument=*/true, /*vuln=*/true);
  config.use_event_loop = true;
  config.connection_budget = 2;

  AttackResult attack;
  Status status;
  std::thread client([&] {
    VRef<VConnection> probe;
    while ((probe = mvee.kernel().network().Connect(8205)) == nullptr) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    probe->CloseClientSide();
    const uint64_t master_base = DiversityMap(0, options.seed, true).map_base();
    attack = RunAttack(mvee.kernel(), 8205, master_base);
  });
  status = mvee.Run(MakeServerProgram(config));
  client.join();

  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kDivergence);
  EXPECT_FALSE(attack.secret_leaked);
}

TEST(NgxSpinlockTest, BothModesMutualExclusion) {
  for (bool instrumented : {true, false}) {
    NgxSpinlock lock(instrumented);
    int counter = 0;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&] {
        for (int i = 0; i < 1000; ++i) {
          lock.Lock();
          ++counter;
          lock.Unlock();
        }
      });
    }
    for (auto& thread : threads) {
      thread.join();
    }
    EXPECT_EQ(counter, 4000);
  }
}

TEST(LayoutTokenTest, DistinctBasesDistinctTokens) {
  EXPECT_NE(LayoutToken(0x1000), LayoutToken(0x2000));
  EXPECT_EQ(LayoutToken(0x1000), LayoutToken(0x1000));
}

}  // namespace
}  // namespace mvee
