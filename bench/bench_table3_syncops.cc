// Regenerates paper Table 3: sync ops identified per module by the two-stage
// analysis — type (i) LOCK-prefixed, type (ii) XCHG, type (iii) aliasing
// aligned load/stores — over the synthetic binary corpus, plus the worked
// examples of Listings 1 and 2 and the _Atomic propagation workflow
// (§4.3.1).
//
// The identified sync ops are only worth finding because record/replay of
// each one is cheap, so the bench closes with the record+replay fast-path
// rate of every agent kind, with the ring's cached gating cursors off and on
// (AgentConfig::cached_ring_cursors) — the before/after of the
// zero-contention fast path — and seeds BENCH_agents.json from the cached
// rates.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "mvee/agents/agent_fleet.h"
#include "mvee/analysis/atomic_check.h"
#include "mvee/analysis/corpus.h"
#include "mvee/analysis/field_sensitive.h"
#include "mvee/analysis/syncop_analysis.h"

namespace {

// Master record-path rate: the master agent records batches while three
// slave variants replay them between batches (their cursors are what gate —
// and without caching, what the producer rescans on — every push).
// Single-threaded and best-of-3, so the number is the pure instruction-path
// cost of a recorded sync op, free of scheduler noise on small hosts.
mvee::bench::AgentBenchResult MeasureAgentRecordRate(mvee::AgentKind kind,
                                                     bool cached_cursors,
                                                     size_t total_ops) {
  using namespace mvee;
  constexpr uint32_t kVariants = 4;  // Paper Table 1's widest configuration.
  AgentConfig config;
  config.num_variants = kVariants;
  config.max_threads = 1;
  config.buffer_capacity = 1 << 16;
  config.cached_ring_cursors = cached_cursors;
  std::atomic<bool> abort{false};
  AgentControl control;
  control.abort_flag = &abort;
  AgentFleet fleet(kind, config, control);
  auto master = fleet.CreateAgent(0);
  std::vector<std::unique_ptr<SyncAgent>> slaves;
  for (uint32_t v = 1; v < kVariants; ++v) {
    slaves.push_back(fleet.CreateAgent(v));
  }

  const size_t batch = 1 << 12;  // Must stay below buffer_capacity.
  int sync_var = 0;
  double best_seconds = 0.0;
  AgentStatsSnapshot best_stalls;  // Stall deltas of the best rep, so the
                                   // JSON pairs quantities from one rep.
  for (int rep = 0; rep < 3; ++rep) {
    const AgentStatsSnapshot before = fleet.StatsSnapshot();
    double record_seconds = 0.0;
    for (size_t done = 0; done < total_ops; done += batch) {
      const auto start = std::chrono::steady_clock::now();
      for (size_t i = 0; i < batch; ++i) {
        master->BeforeSyncOp(0, &sync_var);
        master->AfterSyncOp(0, &sync_var);
      }
      record_seconds += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                      start).count();
      for (auto& slave : slaves) {
        for (size_t i = 0; i < batch; ++i) {
          slave->BeforeSyncOp(0, &sync_var);
          slave->AfterSyncOp(0, &sync_var);
        }
      }
    }
    if (best_seconds == 0.0 || record_seconds < best_seconds) {
      best_seconds = record_seconds;
      const AgentStatsSnapshot after = fleet.StatsSnapshot();
      best_stalls.record_stalls = after.record_stalls - before.record_stalls;
      best_stalls.replay_stalls = after.replay_stalls - before.replay_stalls;
    }
  }
  bench::AgentBenchResult result;
  result.kind = AgentKindName(kind);
  result.mode = cached_cursors ? "cached" : "uncached";
  result.ops_per_sec = total_ops / best_seconds;
  result.record_stalls = best_stalls.record_stalls;
  result.replay_stalls = best_stalls.replay_stalls;
  return result;
}

// Multi-threaded master record throughput under concurrent replay: the §4.5
// scaling claim, measured. 2 variants (1 master + 1 slave), 8 threads each;
// every master thread records a burst on its own cache-padded sync variable
// — the *program* has no contention, so every stall the master takes is the
// monitor's — while the slave variant replays concurrently. Timed: until the
// masters finish recording (the master variant is the one serving real
// traffic; §4.5 wants its overhead decoupled from the monitor).
//
// The burst equals one sync buffer's capacity. With per-thread recording
// rings each master absorbs its whole burst without ever waiting on replay;
// with the baseline's single shared buffer, 8 threads share one capacity
// and the masters convoy behind the serialized replay drain — on top of the
// global `master_lock_` cache line every op bounces through. On a one-core
// host only the buffer/convoy effects are visible (there is no parallelism
// to reclaim, and the lock line never ping-pongs); with real cores the lock
// line dominates and the gap widens accordingly (docs/perf.md).
mvee::bench::AgentBenchResult MeasureRecordingScaling(mvee::AgentKind kind, bool sharded,
                                                      uint32_t threads,
                                                      size_t ops_per_thread, int rounds) {
  using namespace mvee;
  AgentConfig config;
  config.num_variants = 2;
  config.max_threads = threads;
  config.buffer_capacity = ops_per_thread;  // per sync buffer, WoC convention
  config.sharded_recording = sharded;
  config.replay_deadline = std::chrono::milliseconds(120000);
  std::atomic<bool> abort{false};
  AgentControl control;
  control.abort_flag = &abort;
  AgentFleet fleet(kind, config, control);
  auto master = fleet.CreateAgent(0);
  auto slave = fleet.CreateAgent(1);

  // One cache-line-padded sync variable per thread.
  struct alignas(64) PaddedVar {
    int value = 0;
  };
  std::vector<PaddedVar> vars(threads);

  double best_seconds = 0.0;
  AgentStatsSnapshot best_stalls;  // Stall deltas of the best rep, so the
                                   // JSON pairs quantities from one rep.
  for (int rep = 0; rep < 3; ++rep) {
    const AgentStatsSnapshot before = fleet.StatsSnapshot();
    double record_seconds = 0.0;
    for (int round = 0; round < rounds; ++round) {
      std::atomic<uint32_t> ready{0};
      std::atomic<bool> go{false};
      std::vector<std::thread> masters;
      std::vector<std::thread> slaves;
      for (uint32_t t = 0; t < threads; ++t) {
        masters.emplace_back([&, t] {
          ready.fetch_add(1);
          while (!go.load(std::memory_order_acquire)) {
          }
          for (size_t i = 0; i < ops_per_thread; ++i) {
            master->BeforeSyncOp(t, &vars[t].value);
            master->AfterSyncOp(t, &vars[t].value);
          }
        });
        slaves.emplace_back([&, t] {
          ready.fetch_add(1);
          while (!go.load(std::memory_order_acquire)) {
          }
          for (size_t i = 0; i < ops_per_thread; ++i) {
            slave->BeforeSyncOp(t, &vars[t].value);
            slave->AfterSyncOp(t, &vars[t].value);
          }
        });
      }
      while (ready.load() != 2 * threads) {
      }
      const auto start = std::chrono::steady_clock::now();
      go.store(true, std::memory_order_release);
      for (auto& thread : masters) {
        thread.join();
      }
      record_seconds +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
      // Tail drain (untimed): the slave variant finishes the round so the
      // next one starts with empty rings — and re-verifies that the recorded
      // streams replay cleanly at this scale.
      for (auto& thread : slaves) {
        thread.join();
      }
    }
    if (best_seconds == 0.0 || record_seconds < best_seconds) {
      best_seconds = record_seconds;
      const AgentStatsSnapshot after = fleet.StatsSnapshot();
      best_stalls.record_stalls = after.record_stalls - before.record_stalls;
      best_stalls.replay_stalls = after.replay_stalls - before.replay_stalls;
    }
  }

  bench::AgentBenchResult result;
  result.kind = AgentKindName(kind);
  result.mode = sharded ? "record-sharded-8t" : "record-locked-8t";
  result.ops_per_sec = static_cast<double>(threads) * ops_per_thread * rounds / best_seconds;
  result.record_stalls = best_stalls.record_stalls;
  result.replay_stalls = best_stalls.replay_stalls;
  return result;
}

}  // namespace

int main() {
  using namespace mvee;

  std::printf("\n================================================================\n");
  std::printf("Table 3: identified sync ops per module (paper values in parens)\n");
  std::printf("================================================================\n");
  std::printf("%-22s %13s %13s %13s %9s\n", "module", "(i) LOCK", "(ii) XCHG",
              "(iii) ld/st", "unmarked");

  const auto specs = Table3Specs();
  for (const auto& spec : specs) {
    const SyncOpReport report = IdentifySyncOps(BuildSyntheticModule(spec));
    std::printf("%-22s %5zu (%5zu) %5zu (%5zu) %5zu (%5zu) %9zu\n", report.module_name.c_str(),
                report.type_i.size(), spec.type_i, report.type_ii.size(), spec.type_ii,
                report.type_iii.size(), spec.type_iii, report.unmarked_memops);
  }

  std::printf("\n--- Worked examples (paper Listings 1 & 2) ---\n");
  {
    const SyncOpReport listing1 = IdentifySyncOps(BuildListing1Module());
    std::printf("listing1 (ad-hoc spinlock): type(i)=%zu type(iii)=%zu; "
                "stage 2 marked the unlock store at %s\n",
                listing1.type_i.size(), listing1.type_iii.size(),
                listing1.type_iii.empty() ? "<missed!>"
                                          : listing1.type_iii[0].source_line.c_str());
  }
  {
    const SyncOpReport base = IdentifySyncOps(BuildListing2Module());
    SyncOpAnalysisOptions volatile_opt;
    volatile_opt.treat_volatile_as_sync = true;
    const SyncOpReport extended = IdentifySyncOps(BuildListing2Module(), volatile_opt);
    std::printf("listing2 (volatile condvar): base analysis found %zu (documented "
                "limitation), volatile extension found %zu\n",
                base.TotalSyncOps(), extended.TotalSyncOps());
  }

  std::printf("\n--- _Atomic qualifier propagation (Figure 3 workflow) ---\n");
  for (const auto& spec : specs) {
    const MirModule module = BuildSyntheticModule(spec);
    const SyncOpReport report = IdentifySyncOps(module);
    const PropagationResult propagation = PropagateQualifiers(module, report.sync_objects);
    std::printf("%-22s qualified %3zu objects, %4zu pointers, fixpoint in %d compiles, "
                "%zu hard errors\n",
                module.name.c_str(), propagation.qualified_objects.size(),
                propagation.qualified_regs.size(), propagation.iterations,
                propagation.hard_errors.size());
  }

  std::printf("\n--- Heap field-sensitivity (§4.3.1's DSA/SVF complaint) ---\n");
  std::printf("STL refcounting pattern (§5.3): heap nodes, LOCK XADD on field 0,\n"
              "plain payload accesses on fields 1..4. Spurious marks per analysis:\n");
  {
    const RefcountHeapCorpus corpus = BuildRefcountHeapModule(
        /*nodes=*/32, /*payload_fields=*/4, /*accesses_per_field=*/3);
    const SyncOpReport steensgaard = IdentifySyncOps(corpus.module);
    const SyncOpReport andersen = IdentifySyncOpsAndersen(corpus.module);
    const SyncOpReport sensitive = IdentifySyncOpsFieldSensitive(corpus.module);
    const size_t total_plain = corpus.payload_memops;
    auto spurious = [&](const SyncOpReport& report) {
      return report.type_iii.size() - corpus.real_type_iii;
    };
    std::printf("  ground truth: %zu real type (iii), %zu plain payload memops\n",
                corpus.real_type_iii, total_plain);
    std::printf("  %-28s type(iii)=%4zu  spurious=%4zu (%5.1f%% of payload)\n",
                "steensgaard (DSA-style)", steensgaard.type_iii.size(),
                spurious(steensgaard), 100.0 * spurious(steensgaard) / total_plain);
    std::printf("  %-28s type(iii)=%4zu  spurious=%4zu (%5.1f%% of payload)\n",
                "andersen (SVF-as-queried)", andersen.type_iii.size(), spurious(andersen),
                100.0 * spurious(andersen) / total_plain);
    std::printf("  %-28s type(iii)=%4zu  spurious=%4zu (%5.1f%% of payload)\n",
                "andersen field-sensitive", sensitive.type_iii.size(), spurious(sensitive),
                100.0 * spurious(sensitive) / total_plain);
    std::printf("  (the paper reports \"the majority of type (iii) instructions that\n"
                "   target heap-allocated variables\" are spuriously marked by both\n"
                "   DSA and SVF; field-granular heap queries eliminate that.)\n");
  }

  std::vector<bench::AgentBenchResult> json_entries;

  std::printf("\n--- Master record path per agent, 4 variants "
              "(cached gating cursors off/on) ---\n");
  {
    constexpr AgentKind kKinds[] = {AgentKind::kTotalOrder, AgentKind::kPartialOrder,
                                    AgentKind::kWallOfClocks, AgentKind::kPerVariableOrder};
    const size_t total_ops = 1 << 21;
    std::printf("%-22s %14s %14s %9s\n", "agent", "uncached op/s", "cached op/s", "speedup");
    for (const AgentKind kind : kKinds) {
      MeasureAgentRecordRate(kind, true, 1 << 17);  // warmup
      const bench::AgentBenchResult uncached = MeasureAgentRecordRate(kind, false, total_ops);
      const bench::AgentBenchResult cached = MeasureAgentRecordRate(kind, true, total_ops);
      std::printf("%-22s %13.2fM %13.2fM %8.2fx\n", cached.kind.c_str(),
                  uncached.ops_per_sec / 1e6, cached.ops_per_sec / 1e6,
                  cached.ops_per_sec / uncached.ops_per_sec);
      json_entries.push_back(cached);
    }
  }

  std::printf("\n--- Recording scaling: TO/PO master at 2 variants x 8 threads "
              "(sharded ticketed rings vs global lock, docs/DESIGN.md §8) ---\n");
  // Gate for CI: MVEE_BENCH_AGENTS_MIN_SPEEDUP fails the run when the
  // sharded recording path does not beat the global-lock baseline by the
  // given factor for BOTH agents (0/unset = report only). The >= 1.5x
  // target needs real cores (docs/perf.md); CI gates with a margin sized
  // to its runners, and one-core hosts should gate at <= 1.0.
  double min_speedup = 0.0;
  if (const char* env = std::getenv("MVEE_BENCH_AGENTS_MIN_SPEEDUP")) {
    min_speedup = std::atof(env);
  }
  bool gate_ok = true;
  {
    constexpr uint32_t kThreads = 8;
    const size_t ops_per_thread = static_cast<size_t>(
        bench::EnvInt("MVEE_BENCH_AGENTS_OPS", 4096));
    constexpr int kRounds = 4;
    std::printf("%-22s %14s %14s %9s\n", "agent", "locked op/s", "sharded op/s", "speedup");
    for (const AgentKind kind : {AgentKind::kTotalOrder, AgentKind::kPartialOrder}) {
      MeasureRecordingScaling(kind, true, kThreads, ops_per_thread, 1);  // warmup
      const bench::AgentBenchResult locked =
          MeasureRecordingScaling(kind, false, kThreads, ops_per_thread, kRounds);
      const bench::AgentBenchResult sharded =
          MeasureRecordingScaling(kind, true, kThreads, ops_per_thread, kRounds);
      const double speedup = sharded.ops_per_sec / locked.ops_per_sec;
      std::printf("%-22s %13.2fM %13.2fM %8.2fx\n", locked.kind.c_str(),
                  locked.ops_per_sec / 1e6, sharded.ops_per_sec / 1e6, speedup);
      json_entries.push_back(locked);
      json_entries.push_back(sharded);
      if (min_speedup > 0.0 && speedup < min_speedup) {
        std::fprintf(stderr,
                     "FAIL: %s sharded recording speedup %.2fx below required %.2fx\n",
                     locked.kind.c_str(), speedup, min_speedup);
        gate_ok = false;
      }
    }
  }

  bench::WriteAgentsJson(json_entries);
  return gate_ok ? 0 : 1;
}
