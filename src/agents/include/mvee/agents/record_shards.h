// Shared machinery of the agents' recording paths (docs/DESIGN.md §8): the
// per-sync-variable shard locks and global ticket counter of the sharded
// TO/PO master path, the lazily-created per-master-thread recording rings
// every runtime records into, and the record-with-backpressure pushes of
// both the sharded and the global-lock (sharded_recording=0) baselines. The
// runtimes instantiate this rather than carrying private copies, so a change
// to the lock/ticket/push sequence — whose memory ordering the §8 soundness
// argument depends on — cannot silently diverge between agents.

#ifndef MVEE_AGENTS_RECORD_SHARDS_H_
#define MVEE_AGENTS_RECORD_SHARDS_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "mvee/agents/sync_agent.h"
#include "mvee/util/hash.h"
#include "mvee/util/spin.h"
#include "mvee/util/spsc_ring.h"
#include "mvee/util/variant_killed.h"

namespace mvee {

// Per-variable recording shards + the fetch_add ticket counter. `Extra` is
// a per-shard payload guarded by the shard's lock (empty for TO, the
// dependence-chain tail for PO). Hashing uses WoC's 8-byte bucketing, so
// contention on a shard mirrors the program's own contention on the
// corresponding sync variables; independent ops never share a lock line.
template <typename Extra>
class TicketedRecordShards {
 public:
  // Default shard count when no AgentConfig is in play (standalone tests);
  // configured runtimes size from AgentConfig::record_shard_count, which
  // scales with max_threads.
  static constexpr size_t kDefaultShardCount = 512;  // power of two

  struct alignas(64) Shard {
    std::atomic_flag lock = ATOMIC_FLAG_INIT;
    Extra extra{};

    void Release() { lock.clear(std::memory_order_release); }
  };

  // `enabled` = AgentConfig::sharded_recording; the baseline pays for no
  // shard memory. `shard_count` must be a power of two (ValidatedAgentConfig
  // guarantees it for configured callers).
  explicit TicketedRecordShards(bool enabled, size_t shard_count = kDefaultShardCount)
      : shard_mask_(shard_count - 1), shards_(enabled ? shard_count : 0) {}

  static size_t IndexFor(const void* addr, size_t shard_count) {
    return ClockAddressHash(reinterpret_cast<uint64_t>(addr)) & (shard_count - 1);
  }

  size_t IndexOf(const void* addr) const {
    return ClockAddressHash(reinterpret_cast<uint64_t>(addr)) & shard_mask_;
  }

  size_t shard_count() const { return shard_mask_ + 1; }

  // Spins until the addr's shard lock is held (throws VariantKilled on
  // abort) and accounts contended spins into stats.record_lock_spins. The
  // caller holds the lock across (op + ticket + push) and releases through
  // Shard::Release (usually via RecordIntoRing).
  Shard& Acquire(const void* addr, const AgentControl& control, AgentStats::Shard& stats) {
    Shard& shard = shards_[IndexOf(addr)];
    SpinWait waiter;
    while (shard.lock.test_and_set(std::memory_order_acquire)) {
      if (control.aborted()) {
        throw VariantKilled{};
      }
      waiter.Pause();
    }
    if (waiter.spins() > 0) {
      stats.record_lock_spins.fetch_add(waiter.spins(), std::memory_order_relaxed);
    }
    return shard;
  }

  // Must be called with the op's shard lock held: the §8 soundness argument
  // needs conflicting ops' tickets drawn in conflict order.
  uint64_t DrawTicket() { return ticket_.fetch_add(1, std::memory_order_relaxed); }

  uint64_t TicketsIssued() const { return ticket_.load(std::memory_order_relaxed); }

 private:
  alignas(64) std::atomic<uint64_t> ticket_{0};
  const size_t shard_mask_;
  std::vector<Shard> shards_;
};

// The per-master-thread recording rings: one per logical tid, one consumer
// per slave variant (consumer v-1 belongs to slave variant v), created
// lazily on a tid's first sync op instead of eagerly for all of max_threads.
// Eager allocation cost kinds x max_threads x buffer_capacity ring slots —
// ~64 MiB per runtime at the defaults — which the adaptive fleet (all four
// runtimes alive at once, docs/DESIGN.md §11) multiplies by four while a
// typical run touches a handful of tids. Either side of a ring (the master
// producer or a slave replayer) may be first to touch it; a CAS publishes
// exactly one instance. The one-time allocation happens on that thread's
// first op — bootstrap, like the thread's own creation — so the per-op path
// stays allocation-free (§3.3; adaptive_test proves it).
template <typename Entry>
class LazyRingSet {
 public:
  // `enabled` = whether this runtime records into per-thread rings at all
  // (TO/PO pass sharded_recording; WoC/PVO always record per-thread).
  LazyRingSet(bool enabled, const AgentConfig& config)
      : capacity_(config.buffer_capacity),
        caching_(config.cached_ring_cursors),
        consumers_(config.num_variants > 0 ? config.num_variants - 1 : 0),
        slots_(enabled ? config.max_threads : 0) {}

  LazyRingSet(const LazyRingSet&) = delete;
  LazyRingSet& operator=(const LazyRingSet&) = delete;

  ~LazyRingSet() {
    for (auto& slot : slots_) {
      delete slot.load(std::memory_order_relaxed);
    }
  }

  bool enabled() const { return !slots_.empty(); }

  // Rings actually materialized so far (== distinct tids that performed a
  // sync op under this runtime).
  uint64_t CreatedCount() const { return created_.load(std::memory_order_relaxed); }

  // Hot path: returns tid's ring, creating it on first touch. The caller
  // guarantees tid < max_threads (CheckTidBound).
  BroadcastRing<Entry>& Get(uint32_t tid) {
    BroadcastRing<Entry>* ring = slots_[tid].load(std::memory_order_acquire);
    if (ring != nullptr) [[likely]] {
      return *ring;
    }
    return Create(tid);
  }

  // Excision: marks `consumer` detached in every existing ring AND in every
  // ring created later (the dead variant's consumer must not gate a ring a
  // new thread materializes after the excision).
  void DetachConsumer(size_t consumer) {
    detached_.fetch_or(uint32_t{1} << consumer, std::memory_order_acq_rel);
    for (auto& slot : slots_) {
      if (BroadcastRing<Entry>* ring = slot.load(std::memory_order_acquire)) {
        ring->DetachConsumer(consumer);
      }
    }
  }

 private:
  BroadcastRing<Entry>& Create(uint32_t tid) {
    auto* fresh = new BroadcastRing<Entry>(capacity_);
    fresh->EnableCursorCaching(caching_);
    for (size_t v = 0; v < consumers_; ++v) {
      fresh->RegisterConsumer();
    }
    BroadcastRing<Entry>* expected = nullptr;
    if (!slots_[tid].compare_exchange_strong(expected, fresh, std::memory_order_acq_rel)) {
      delete fresh;  // Lost the publication race; the winner's ring is live.
      return *expected;
    }
    created_.fetch_add(1, std::memory_order_relaxed);
    // Detach bits published before our CAS are applied here; bits set after
    // the CAS find the ring in the detacher's loop. Both may run for the
    // same bit — DetachConsumer is an idempotent flag store.
    const uint32_t mask = detached_.load(std::memory_order_acquire);
    for (size_t v = 0; v < consumers_; ++v) {
      if (mask & (uint32_t{1} << v)) {
        fresh->DetachConsumer(v);
      }
    }
    return *fresh;
  }

  const size_t capacity_;
  const bool caching_;
  const size_t consumers_;
  std::vector<std::atomic<BroadcastRing<Entry>*>> slots_;
  std::atomic<uint32_t> detached_{0};
  std::atomic<uint64_t> created_{0};
};

// The tail of a sharded master's AfterSyncOp: push the stamped entry into
// the thread's own ring (spinning while the slowest slave variant gates the
// slot), bump ops_recorded, release the shard. The push stays inside the
// shard lock — that chains ring publications of conflicting ops, the
// visibility half of the §8 argument.
template <typename Shard, typename Entry>
void RecordIntoRing(BroadcastRing<Entry>& ring, const Entry& entry, Shard& shard,
                    const AgentControl& control, AgentStats::Shard& stats) {
  if (!ring.TryPush(entry)) {
    stats.record_stalls.fetch_add(1, std::memory_order_relaxed);
    SpinWait waiter;
    while (!ring.TryPush(entry)) {
      if (control.aborted()) {
        shard.Release();
        throw VariantKilled{};
      }
      waiter.Pause();
    }
  }
  stats.ops_recorded.fetch_add(1, std::memory_order_relaxed);
  shard.Release();
}

// The sharded_recording=false baseline's master path, shared by TO and PO
// (the seed carried verbatim copies in both agents): one global
// instrumentation lock held across the sync op, so the recorded order IS the
// execution order. This read-write sharing on one cache line is the
// scalability problem §4.5 attributes to the simple agents — kept selectable
// for in-run A/B sweeps, and kept HERE so the baseline the sharded path is
// measured against cannot drift between the two agents.
inline void AcquireGlobalRecordLock(std::atomic_flag& lock, const AgentControl& control,
                                    AgentStats::Shard& stats) {
  SpinWait waiter;
  while (lock.test_and_set(std::memory_order_acquire)) {
    if (control.aborted()) {
      throw VariantKilled{};
    }
    waiter.Pause();
  }
  if (waiter.spins() > 0) {
    stats.record_lock_spins.fetch_add(waiter.spins(), std::memory_order_relaxed);
  }
}

// The tail of a baseline master's AfterSyncOp: push into the single global
// ring and release the global lock. The push must stay inside the lock — the
// ring has one logical producer (whoever holds the lock) and its push order
// is the recorded order.
template <typename Entry>
void RecordIntoGlobalRing(BroadcastRing<Entry>& ring, const Entry& entry,
                          std::atomic_flag& lock, const AgentControl& control,
                          AgentStats::Shard& stats) {
  if (!ring.TryPush(entry)) {
    stats.record_stalls.fetch_add(1, std::memory_order_relaxed);
    SpinWait waiter;
    while (!ring.TryPush(entry)) {
      if (control.aborted()) {
        lock.clear(std::memory_order_release);
        throw VariantKilled{};
      }
      waiter.Pause();
    }
  }
  stats.ops_recorded.fetch_add(1, std::memory_order_relaxed);
  lock.clear(std::memory_order_release);
}

}  // namespace mvee

#endif  // MVEE_AGENTS_RECORD_SHARDS_H_
