// Protected-server throughput + latency percentiles: readiness-driven event
// loop vs the seed's one-at-a-time dispatcher (docs/DESIGN.md §10), measured
// open-loop so the percentiles are free of coordinated omission.
//
// Cells (each one full server run + open-loop load):
//   - native event-loop            (no MVEE: the bare-metal context)
//   - MVEE event-loop              (gate numerator,   default 2 variants)
//   - MVEE seed dispatcher         (gate denominator, default 2 variants)
//   - MVEE event-loop, 3 variants  (breadth: scaling one variant up)
//
// Both MVEE serving modes see the same offered *request* rate: the event
// loop amortizes it over keep-alive connections carrying RPC requests each,
// the seed dispatcher pays one connection per request — which is exactly the
// architectural difference under test. Latency is measured from each
// request's intended send time, so accept-backlog queueing counts against
// the server. Results go to BENCH_server.json.
//
// Knobs:
//   MVEE_BENCH_SERVER_CONNS        event-loop connections        (default 1000)
//   MVEE_BENCH_SERVER_RPC          requests per connection       (default 2)
//   MVEE_BENCH_SERVER_RATE         connection arrivals/s         (default 20000)
//   MVEE_BENCH_SERVER_THREADS     server pool threads           (default 8)
//   MVEE_BENCH_SERVER_MIN_SPEEDUP  exit nonzero when event-loop rps /
//                                  seed rps falls below this     (default 0 = off)
//   MVEE_BENCH_SERVER_MAX_P99X     exit nonzero when event-loop p99 exceeds
//                                  seed p99 * this               (default 0 = off)

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "mvee/server/http_server.h"
#include "mvee/server/wrk.h"

namespace {

using namespace mvee;
using mvee::bench::EnvInt;

struct CellResult {
  std::string mode;
  uint32_t variants = 0;  // 0 = native.
  uint32_t connections = 0;
  uint32_t requests_per_conn = 0;
  bool ok = false;
  uint64_t responses_ok = 0;
  uint64_t responses_non2xx = 0;
  uint64_t responses_truncated = 0;
  uint64_t connect_retries = 0;
  double seconds = 0.0;
  double rps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double p999_us = 0.0;
};

ServerConfig CellServerConfig(uint16_t port, uint32_t pool_threads, bool event_loop,
                              uint32_t budget) {
  ServerConfig config;
  config.port = port;
  config.pool_threads = pool_threads;
  config.page_bytes = 4096;  // §5.5 serves a 4 KiB static page.
  config.use_event_loop = event_loop;
  config.connection_budget = budget;
  return config;
}

// Runs `serve` (a blocking server run) while the open-loop client drives it;
// the readiness probe consumes the extra accept slot in the budget.
template <typename ServeFn>
OpenLoopResult DriveOpenLoop(VirtualKernel& kernel, const OpenLoopOptions& load,
                             ServeFn serve) {
  OpenLoopResult result;
  std::thread client([&] {
    VRef<VConnection> probe;
    while ((probe = kernel.network().Connect(load.port)) == nullptr) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    probe->CloseClientSide();
    result = RunWrkOpenLoop(kernel, load);
  });
  serve();
  client.join();
  return result;
}

CellResult Summarize(const std::string& mode, uint32_t variants,
                     const OpenLoopOptions& load, const OpenLoopResult& run, bool ok) {
  CellResult cell;
  cell.mode = mode;
  cell.variants = variants;
  cell.connections = load.connections;
  cell.requests_per_conn = load.requests_per_conn;
  cell.ok = ok;
  cell.responses_ok = run.responses_ok;
  cell.responses_non2xx = run.responses_non2xx;
  cell.responses_truncated = run.responses_truncated;
  cell.connect_retries = run.connect_retries;
  cell.seconds = run.seconds;
  cell.rps = run.RequestsPerSecond();
  cell.p50_us = static_cast<double>(run.PercentileNanos(0.50)) / 1000.0;
  cell.p99_us = static_cast<double>(run.PercentileNanos(0.99)) / 1000.0;
  cell.p999_us = static_cast<double>(run.PercentileNanos(0.999)) / 1000.0;
  return cell;
}

CellResult RunNativeCell(uint16_t port, uint32_t pool_threads, const OpenLoopOptions& load) {
  NativeRunner runner;
  ServerConfig config =
      CellServerConfig(port, pool_threads, /*event_loop=*/true, load.connections + 1);
  bool ok = false;
  const OpenLoopResult run = DriveOpenLoop(runner.kernel(), load, [&] {
    ok = runner.Run(MakeServerProgram(config)).ok();
  });
  return Summarize("native-event-loop", 0, load, run, ok);
}

CellResult RunMveeCell(const std::string& mode, uint16_t port, uint32_t variants,
                       uint32_t pool_threads, bool event_loop, const OpenLoopOptions& load) {
  MveeOptions options;
  options.num_variants = variants;
  options.agent = AgentKind::kWallOfClocks;
  options.enable_aslr = false;  // Matches the paper's performance runs (§5.1).
  options.rendezvous_timeout = std::chrono::milliseconds(60000);
  options.agent_config.replay_deadline = std::chrono::milliseconds(60000);
  options.blocked_call_timeout = std::chrono::milliseconds(60000);
  Mvee mvee(options);

  ServerConfig config =
      CellServerConfig(port, pool_threads, event_loop, load.connections + 1);
  bool ok = false;
  const OpenLoopResult run = DriveOpenLoop(mvee.kernel(), load, [&] {
    ok = mvee.Run(MakeServerProgram(config)).ok();
  });
  return Summarize(mode, variants, load, run, ok);
}

void WriteServerJson(const std::vector<CellResult>& cells, double speedup,
                     double p99_ratio) {
  const std::string path = bench::ResolveBenchJsonPath("BENCH_server.json");
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "WriteServerJson: cannot open %s\n", path.c_str());
    return;
  }
  std::fprintf(file, "{\n  \"server\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const CellResult& cell = cells[i];
    std::fprintf(
        file,
        "    {\"mode\": \"%s\", \"variants\": %u, \"connections\": %u, "
        "\"requests_per_conn\": %u, \"ok\": %s, \"responses_ok\": %llu, "
        "\"responses_non2xx\": %llu, \"responses_truncated\": %llu, "
        "\"connect_retries\": %llu, \"seconds\": %.3f, \"rps\": %.1f, "
        "\"p50_us\": %.1f, \"p99_us\": %.1f, \"p999_us\": %.1f}%s\n",
        cell.mode.c_str(), cell.variants, cell.connections, cell.requests_per_conn,
        cell.ok ? "true" : "false", static_cast<unsigned long long>(cell.responses_ok),
        static_cast<unsigned long long>(cell.responses_non2xx),
        static_cast<unsigned long long>(cell.responses_truncated),
        static_cast<unsigned long long>(cell.connect_retries), cell.seconds, cell.rps,
        cell.p50_us, cell.p99_us, cell.p999_us, i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(file,
               "  ],\n  \"speedup_event_vs_seed\": %.2f,\n"
               "  \"p99_ratio_event_vs_seed\": %.2f\n}\n",
               speedup, p99_ratio);
  std::fclose(file);
  std::printf("wrote %s (%zu cells)\n", path.c_str(), cells.size());
}

void PrintCell(const CellResult& cell) {
  std::printf(
      "  %-22s %uv  %5u conns x %u  %8.0f req/s  p50 %8.0fus  p99 %8.0fus  "
      "p999 %8.0fus%s%s\n",
      cell.mode.c_str(), cell.variants, cell.connections, cell.requests_per_conn,
      cell.rps, cell.p50_us, cell.p99_us, cell.p999_us, cell.ok ? "" : "  [RUN FAILED]",
      cell.responses_truncated > 0 ? "  [TRUNCATED]" : "");
}

}  // namespace

int main() {
  using namespace mvee::bench;

  const auto conns = static_cast<uint32_t>(EnvInt("MVEE_BENCH_SERVER_CONNS", 1000));
  const auto rpc = static_cast<uint32_t>(EnvInt("MVEE_BENCH_SERVER_RPC", 2));
  // Default offered rate deliberately saturates both serving modes so the
  // gate compares capacity, not the load generator's schedule.
  const double rate = static_cast<double>(EnvInt("MVEE_BENCH_SERVER_RATE", 20000));
  const auto pool = static_cast<uint32_t>(EnvInt("MVEE_BENCH_SERVER_THREADS", 8));
  const uint64_t total_requests = static_cast<uint64_t>(conns) * rpc;

  PrintHeader("Protected server under open-loop load: event loop vs seed dispatcher (" +
              std::to_string(pool) + " pool threads, " + std::to_string(total_requests) +
              " requests/cell)");

  // Event-loop load shape: `conns` keep-alive connections x `rpc` requests.
  OpenLoopOptions event_load;
  event_load.connections = conns;
  event_load.requests_per_conn = rpc;
  event_load.pipeline_depth = 2;
  event_load.arrival_rate = rate;
  event_load.client_threads = 4;

  // Seed dispatcher serves exactly one HTTP/1.0 request per connection, so
  // the same request volume arrives as `conns * rpc` single-request
  // connections at the same offered request rate.
  OpenLoopOptions seed_load;
  seed_load.connections = conns * rpc;
  seed_load.requests_per_conn = 1;
  seed_load.pipeline_depth = 1;
  seed_load.arrival_rate = rate * rpc;
  seed_load.client_threads = 4;

  std::vector<CellResult> cells;

  {
    OpenLoopOptions load = event_load;
    load.port = 9100;
    cells.push_back(RunNativeCell(load.port, pool, load));
    PrintCell(cells.back());
  }
  {
    OpenLoopOptions load = event_load;
    load.port = 9101;
    cells.push_back(RunMveeCell("mvee-event-loop", load.port, 2, pool,
                                /*event_loop=*/true, load));
    PrintCell(cells.back());
  }
  {
    OpenLoopOptions load = seed_load;
    load.port = 9102;
    cells.push_back(RunMveeCell("mvee-seed-dispatcher", load.port, 2, pool,
                                /*event_loop=*/false, load));
    PrintCell(cells.back());
  }
  {
    // Breadth cell: one variant more, a quarter of the volume.
    OpenLoopOptions load = event_load;
    load.port = 9103;
    load.connections = std::max(100u, conns / 4);
    cells.push_back(RunMveeCell("mvee-event-loop", load.port, 3, pool,
                                /*event_loop=*/true, load));
    PrintCell(cells.back());
  }

  const CellResult& event_cell = cells[1];
  const CellResult& seed_cell = cells[2];
  const double speedup = seed_cell.rps > 0 ? event_cell.rps / seed_cell.rps : 0.0;
  const double p99_ratio =
      seed_cell.p99_us > 0 ? event_cell.p99_us / seed_cell.p99_us : 0.0;
  std::printf("\n  event-loop vs seed-dispatcher: %.2fx throughput, p99 ratio %.2f\n",
              speedup, p99_ratio);
  WriteServerJson(cells, speedup, p99_ratio);

  bool failed = false;
  for (const CellResult& cell : cells) {
    if (!cell.ok || cell.responses_ok + cell.responses_non2xx !=
                        static_cast<uint64_t>(cell.connections) * cell.requests_per_conn) {
      std::fprintf(stderr, "FAIL: cell %s (%uv) did not serve its full load\n",
                   cell.mode.c_str(), cell.variants);
      failed = true;
    }
  }
  const double min_speedup = std::getenv("MVEE_BENCH_SERVER_MIN_SPEEDUP")
                                 ? std::atof(std::getenv("MVEE_BENCH_SERVER_MIN_SPEEDUP"))
                                 : 0.0;
  if (min_speedup > 0 && speedup < min_speedup) {
    std::fprintf(stderr, "FAIL: event-loop speedup %.2fx below required %.2fx\n", speedup,
                 min_speedup);
    failed = true;
  }
  const double max_p99x = std::getenv("MVEE_BENCH_SERVER_MAX_P99X")
                              ? std::atof(std::getenv("MVEE_BENCH_SERVER_MAX_P99X"))
                              : 0.0;
  if (max_p99x > 0 && p99_ratio > max_p99x) {
    std::fprintf(stderr, "FAIL: event-loop p99 is %.2fx the seed dispatcher's (max %.2f)\n",
                 p99_ratio, max_p99x);
    failed = true;
  }
  return failed ? 1 : 0;
}
