// Per-variable-order (PVO) replication agent — the collision-free limit of
// wall-of-clocks (paper §4.5, last paragraph).
//
// The paper's WoC agent hashes sync-variable addresses onto a fixed pool of
// clocks because agents may not allocate memory dynamically (§3.3); hash
// collisions then cause unnecessary serialization in the slaves. This agent
// explores the other end of that trade-off: it gives every distinct sync
// variable (at 8-byte granularity, same rationale as WoC's bucketing) its
// *own* logical clock, using a statically preallocated, insert-only,
// lock-free open-addressing table. No collisions — and therefore no
// unnecessary serialization — until the table saturates, at which point the
// agent degrades gracefully to hashed (WoC-style) assignment and counts the
// overflow.
//
// This is the ablation baseline for bench_ablation_agents: it bounds from
// above what WoC could gain from a perfect (dynamic) address→clock map, and
// it makes the cost concrete: the table plus per-variant clock mirrors are
// ~16x the memory of the WoC wall for the same workload.

#ifndef MVEE_AGENTS_PER_VARIABLE_H_
#define MVEE_AGENTS_PER_VARIABLE_H_

#include <atomic>
#include <memory>
#include <vector>

#include "mvee/agents/record_shards.h"
#include "mvee/agents/sync_agent.h"
#include "mvee/util/hash.h"
#include "mvee/util/spsc_ring.h"

namespace mvee {

class PerVariableRuntime {
 public:
  PerVariableRuntime(const AgentConfig& config, AgentControl control);

  std::unique_ptr<SyncAgent> CreateAgent(uint32_t variant_index);

  // Excision (docs/DESIGN.md §9): stop `variant`'s stalled ring cursors from
  // gating the master's recording, so survivors keep producing after the
  // variant left. Safe concurrently with running agents.
  void DetachVariant(uint32_t variant);

  const AgentStats& stats() const { return stats_; }
  size_t table_capacity() const { return table_capacity_; }
  // Per-thread recording rings materialized so far (lazy allocation).
  uint64_t RecordingRingsCreated() const { return rings_.CreatedCount(); }

  // Number of distinct sync variables that received a private clock so far.
  uint64_t VariablesMapped() const {
    return variables_mapped_.load(std::memory_order_relaxed);
  }
  // Distinct sync *variables* that hit the probe limit and fell back to
  // hashed (WoC-style) assignment — each saturated variable counts once, no
  // matter how many lookups it serves. (If the dedup side table itself
  // saturates — a config already drowning in overflow — further overflowing
  // variables count once per lookup; the number stays an upper bound on
  // overflowed variables.)
  uint64_t TableOverflows() const {
    return table_overflows_.load(std::memory_order_relaxed);
  }

  // Maps a master-side sync-variable address to its clock id, inserting a
  // fresh private clock on first sight. Thread-safe, lock-free, allocation-
  // free. Exposed for tests and the ablation bench.
  uint32_t ClockOf(const void* addr);

  // Table capacity for a given wall size: next power of two >= 8x the clock
  // count, saturating at the max table size instead of wrapping size_t on
  // huge configs. Static so the overflow guard is testable without
  // allocating a ceiling-sized table.
  static size_t TableCapacityFor(size_t clock_count);

 private:
  friend class PerVariableAgent;

  struct Entry {
    uint32_t clock_id = 0;
    uint64_t time = 0;
  };

  struct alignas(64) MasterClock {
    std::atomic_flag lock = ATOMIC_FLAG_INIT;
    uint64_t time = 0;
  };

  struct alignas(64) SlaveClock {
    std::atomic<uint64_t> time{0};
  };

  AgentConfig config_;
  AgentControl control_;
  AgentStats stats_;
  size_t table_capacity_;  // Power of two.
  uint64_t table_mask_;
  std::atomic<uint64_t> variables_mapped_{0};
  std::atomic<uint64_t> table_overflows_{0};
  // Insert-only table: keys_[i] holds the 8-byte-bucketed address owning
  // clock i, or 0 if clock i is still free. The table index *is* the clock
  // id, so a successful insert allocates the clock in the same CAS.
  std::vector<std::atomic<uint64_t>> keys_;
  // Insert-only dedup set of keys that overflowed, so TableOverflows()
  // counts variables, not lookups. Deliberately much smaller than the main
  // table (it only matters once the table is already saturated, and the
  // counter tolerates overcounting when the set itself fills up).
  size_t overflow_capacity_;  // Power of two.
  uint64_t overflow_mask_;
  std::vector<std::atomic<uint64_t>> overflow_keys_;
  std::vector<MasterClock> master_clocks_;
  LazyRingSet<Entry> rings_;  // [tid], created on first touch
  std::vector<std::vector<SlaveClock>> slave_clocks_;
};

class PerVariableAgent final : public SyncAgent {
 public:
  PerVariableAgent(PerVariableRuntime* runtime, AgentRole role, uint32_t variant_index);

  void BeforeSyncOp(uint32_t tid, const void* addr) override;
  void AfterSyncOp(uint32_t tid, const void* addr) override;
  AgentRole role() const override { return role_; }
  const char* name() const override { return "per-variable-order"; }

 private:
  PerVariableRuntime* const runtime_;
  const AgentRole role_;
  const uint32_t variant_index_;
  // Per-thread scratch, sized from config.max_threads (a fixed 256-slot
  // array here used to overrun silently).
  struct Pending {
    uint32_t clock_id = 0;
    uint64_t time = 0;
  };
  std::vector<Pending> pending_;
};

}  // namespace mvee

#endif  // MVEE_AGENTS_PER_VARIABLE_H_
