// Synthetic MIR corpus.
//
// The paper's Table 3 reports how many type (i)/(ii)/(iii) sync ops its
// analysis identifies in glibc, libpthread, libgomp, libstdc++ and four
// PARSEC binaries. Those binaries cannot be disassembled here, so the corpus
// generator synthesizes modules whose *identifiable* instruction populations
// match the paper's counts, embedded in non-sync noise the analysis must not
// mark. Running the real two-stage analysis over this corpus regenerates
// Table 3 and simultaneously validates the analysis' precision.

#ifndef MVEE_ANALYSIS_CORPUS_H_
#define MVEE_ANALYSIS_CORPUS_H_

#include <cstdint>
#include <vector>

#include "mvee/analysis/mir.h"

namespace mvee {

struct CorpusSpec {
  const char* module_name;
  size_t type_i;    // LOCK-prefixed RMW sites.
  size_t type_ii;   // XCHG sites.
  size_t type_iii;  // Aliasing aligned load/store sites.
  size_t noise_memops;    // Non-sync loads/stores (must stay unmarked).
  size_t noise_computes;  // Pure computation instructions.
};

// The eight Table 3 rows.
std::vector<CorpusSpec> Table3Specs();

// Builds one synthetic module for `spec` (deterministic given `seed`).
MirModule BuildSyntheticModule(const CorpusSpec& spec, uint64_t seed = 0x7ab1e3);

// All Table 3 modules.
std::vector<MirModule> BuildTable3Corpus();

// Paper Listing 1: an ad-hoc spinlock — LOCK CMPXCHG in spinlock_lock plus a
// plain store in spinlock_unlock that aliases the same variable. Stage 2
// must find the store.
MirModule BuildListing1Module();

// Paper Listing 2: a naive condition variable using only volatile
// loads/stores — invisible to the base analysis, found only with the
// volatile extension.
MirModule BuildListing2Module();

// A module with an _Atomic-qualified variable reaching an inline-assembly
// block — the §4.3.1 hard-error case.
MirModule BuildAsmViolationModule();

// The STL thread-safe refcounting pattern (paper §5.3): heap-allocated
// container nodes whose field 0 is an atomically-updated reference counter
// (LOCK XADD) and whose fields 1..payload_fields hold plain data, accessed
// through statically-known member selects. Field-insensitive points-to marks
// every payload access as type (iii) — "the majority of type (iii)
// instructions that target heap-allocated variables are classified as
// potential aliases" (§4.3.1) — while the field-sensitive analysis keeps
// them unmarked.
struct RefcountHeapCorpus {
  MirModule module;
  size_t real_type_iii = 0;     // Ground truth: refcount-aliasing memops.
  size_t payload_memops = 0;    // Plain data accesses (should stay unmarked).
};
RefcountHeapCorpus BuildRefcountHeapModule(size_t nodes = 8, size_t payload_fields = 4,
                                           size_t accesses_per_field = 3);

}  // namespace mvee

#endif  // MVEE_ANALYSIS_CORPUS_H_
