// BroadcastRing throughput: cached gating cursors (Disruptor-style) vs. the
// rescan-every-op baseline, measured in one run via EnableCursorCaching.
//
// Two harnesses:
//
//  * interleaved — one thread alternates producer and consumer roles in
//    batches. Deterministic and core-count independent, so it isolates the
//    *instruction-path* saving of the cached cursors: the producer-phase rate
//    is the master record path that bounds the whole MVEE (paper §4.5), and
//    with caching it no longer scans one cursor line per registered consumer
//    on every push.
//
//  * threaded — a real producer thread against real consumer threads. On a
//    multi-core host this additionally exposes the cross-core cache-line
//    ping-pong the cached cursors eliminate; on a single-core host it mostly
//    measures the scheduler, so it only runs when hardware_concurrency
//    reports enough cores.
//
// MVEE_BENCH_RING_ITERS overrides the item count (CI smoke uses a small one).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "mvee/util/spsc_ring.h"

namespace {

using mvee::BroadcastRing;
using Clock = std::chrono::steady_clock;

constexpr size_t kCapacity = 1 << 12;
constexpr size_t kBatch = 1 << 10;
constexpr size_t kConsumers = 2;

size_t Iterations() {
  if (const char* env = std::getenv("MVEE_BENCH_RING_ITERS")) {
    const long long value = std::atoll(env);
    if (value > 0) {
      // Round up to a whole number of batches.
      return ((static_cast<size_t>(value) + kBatch - 1) / kBatch) * kBatch;
    }
  }
  return 1 << 24;
}

struct Rates {
  double producer_ops = 0.0;  // pushes per second, producer-phase time only
  double end_to_end_ops = 0.0;  // items per second through push + all pops
};

Rates RunInterleaved(bool cached, size_t iters) {
  BroadcastRing<uint64_t> ring(kCapacity);
  size_t consumers[kConsumers];
  for (size_t c = 0; c < kConsumers; ++c) {
    consumers[c] = ring.RegisterConsumer();
  }
  ring.EnableCursorCaching(cached);

  uint64_t sink = 0;
  double push_seconds = 0.0;
  const auto start = Clock::now();
  for (size_t i = 0; i < iters; i += kBatch) {
    const auto push_start = Clock::now();
    for (size_t j = 0; j < kBatch; ++j) {
      ring.Push(i + j);
    }
    push_seconds +=
        std::chrono::duration<double>(Clock::now() - push_start).count();
    for (size_t c = 0; c < kConsumers; ++c) {
      for (size_t j = 0; j < kBatch; ++j) {
        sink += ring.Pop(consumers[c]);
      }
    }
  }
  const double total_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  if (sink == 42) {
    std::printf("(unreachable, defeats dead-code elimination)\n");
  }
  Rates rates;
  rates.producer_ops = iters / push_seconds;
  rates.end_to_end_ops = iters / total_seconds;
  return rates;
}

double RunThreaded(bool cached, size_t iters) {
  BroadcastRing<uint64_t> ring(kCapacity);
  size_t consumers[kConsumers];
  for (size_t c = 0; c < kConsumers; ++c) {
    consumers[c] = ring.RegisterConsumer();
  }
  ring.EnableCursorCaching(cached);

  std::vector<std::thread> threads;
  for (size_t c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&ring, &consumers, c, iters] {
      uint64_t sink = 0;
      for (size_t i = 0; i < iters; ++i) {
        sink += ring.Pop(consumers[c]);
      }
      if (sink == 42) {
        std::printf("(unreachable)\n");
      }
    });
  }
  const auto start = Clock::now();
  for (size_t i = 0; i < iters; ++i) {
    ring.Push(i);
  }
  for (auto& thread : threads) {
    thread.join();
  }
  const double seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return iters / seconds;
}

}  // namespace

int main() {
  using mvee::bench::PrintHeader;
  const size_t iters = Iterations();

  PrintHeader("BroadcastRing throughput: cached gating cursors vs. rescan-every-op");
  std::printf("capacity=%zu, consumers=%zu, batch=%zu, items=%zu\n\n", kCapacity,
              kConsumers, kBatch, iters);

  RunInterleaved(true, std::min(iters, static_cast<size_t>(1) << 20));  // warmup

  std::printf("--- interleaved (single thread, instruction-path cost) ---\n");
  const Rates uncached = RunInterleaved(false, iters);
  const Rates cached = RunInterleaved(true, iters);
  std::printf("%-10s  producer %8.1f M ops/s   end-to-end %8.1f M items/s\n", "uncached",
              uncached.producer_ops / 1e6, uncached.end_to_end_ops / 1e6);
  std::printf("%-10s  producer %8.1f M ops/s   end-to-end %8.1f M items/s\n", "cached",
              cached.producer_ops / 1e6, cached.end_to_end_ops / 1e6);
  const double producer_speedup = cached.producer_ops / uncached.producer_ops;
  const double end_to_end_speedup = cached.end_to_end_ops / uncached.end_to_end_ops;
  std::printf("speedup     producer %8.2fx          end-to-end %8.2fx   %s\n\n",
              producer_speedup, end_to_end_speedup,
              producer_speedup >= 2.0 ? "[>=2x: PASS]" : "[>=2x: below target]");

  const unsigned cores = std::thread::hardware_concurrency();
  if (cores >= kConsumers + 1) {
    std::printf("--- threaded (1 producer + %zu consumer threads, %u cores) ---\n",
                kConsumers, cores);
    const double threaded_uncached = RunThreaded(false, iters);
    const double threaded_cached = RunThreaded(true, iters);
    std::printf("%-10s  %8.1f M items/s\n", "uncached", threaded_uncached / 1e6);
    std::printf("%-10s  %8.1f M items/s\n", "cached", threaded_cached / 1e6);
    std::printf("speedup     %8.2fx\n", threaded_cached / threaded_uncached);
  } else {
    std::printf("--- threaded harness skipped (%u core(s) < %zu needed; the\n"
                "    cross-core ping-pong it measures does not exist here) ---\n",
                cores, kConsumers + 1);
  }
  return 0;
}
