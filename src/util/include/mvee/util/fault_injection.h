// Deterministic fault injection (docs/fault_injection.md).
//
// The robustness layer (docs/DESIGN.md §9) is only testable if variants can
// be made to fail on demand, at a reproducible point, without perturbing the
// fault-free hot path. This header provides that: a process-wide
// FaultInjector armed from a FaultPlan ("crash@2:5;stall@1:3:250"), with
// named injection sites woven through the monitor, the virtual kernel and
// the agents. Each site compiles down to ONE relaxed atomic load plus a
// predicted-not-taken branch when no plan is armed — the disarmed cost is
// covered by the rendezvous hot-path no-allocation/cycle-budget test.
//
// Determinism: a site fires on the Nth *eligible* event (eligibility =
// site + variant filter match), counted with a per-entry atomic, so a plan
// names an exact point in the run's syscall stream. The '*' victim selector
// resolves to a concrete slave variant from the run's seed at Arm() time —
// chaos sweeps can vary the victim without editing the plan string.
//
// The injector is process-global on purpose: the deepest sites (waitq
// notify, futex wake) live in objects that would otherwise each need a
// plumbed pointer. Mvee arms it when MveeOptions::fault_plan is non-empty
// and disarms it when the run's report is finalized; concurrent Mvee
// instances in one process share the injector, so only one run at a time
// should use a plan (tests do; production never arms it).

#ifndef MVEE_UTIL_FAULT_INJECTION_H_
#define MVEE_UTIL_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace mvee {

enum class FaultSite : uint32_t {
  kCrashAtSyscall = 0,  // variant thread dies (silently) entering its Nth syscall
  kStallArrival,        // variant thread sleeps `param` ms inside the arrival window
  kCorruptDigest,       // variant deposits a flipped argument digest
  kDropFutexWake,       // the kernel swallows a sys_futex WAKE
  kDropWaitqWake,       // a wait-queue readiness notify is swallowed
  kDelayRingPublish,    // record/ring publication delayed by `param` ms
  kLeakFdLease,         // a reader lease on an fd slot is never released
  kSiteCount,
};

constexpr uint32_t kFaultSiteCount = static_cast<uint32_t>(FaultSite::kSiteCount);

// Variant filter sentinels. kFaultAnyVariant matches every variant (and is
// what kernel-side sites, which have no variant at hand, pass in).
// kFaultSeededVariant is the parse-time representation of '*', replaced by a
// seed-derived slave variant at Arm().
constexpr uint32_t kFaultAnyVariant = UINT32_MAX;
constexpr uint32_t kFaultSeededVariant = UINT32_MAX - 1;

const char* FaultSiteName(FaultSite site);

// A parsed plan: which sites fire, against which variant, on which
// occurrence. Text syntax (MVEE_FAULT_PLAN / MveeOptions::fault_plan):
//
//   plan    := entry (';' entry)*
//   entry   := site ['@' victim] ':' nth [':' param]
//   site    := crash | stall | digest | drop-futex-wake | drop-waitq-wake |
//              delay-publish | leak-fd-lease
//   victim  := variant index | '*'        (omitted = any variant)
//   nth     := 1-based eligible-event count at which the entry fires
//   param   := site-specific value (stall/delay milliseconds)
struct FaultPlan {
  struct Entry {
    FaultSite site = FaultSite::kSiteCount;
    uint32_t variant = kFaultAnyVariant;
    uint64_t nth = 1;
    uint64_t param = 0;
  };
  std::vector<Entry> entries;

  static bool Parse(const std::string& text, FaultPlan* plan, std::string* error);
};

class FaultInjector {
 public:
  // Enough for any realistic chaos plan; Arm() rejects longer ones.
  static constexpr size_t kMaxEntries = 16;

  constexpr FaultInjector() = default;

  // The process-wide instance every injection site consults.
  static FaultInjector& Global();

  // Installs `plan`, resolving '*' victims from `seed` (never variant 0: the
  // master is not excisable, so a seeded victim is always a slave when
  // num_variants > 1). Returns false (and arms nothing) if the plan has more
  // than kMaxEntries entries.
  bool Arm(const FaultPlan& plan, uint32_t num_variants, uint64_t seed);

  // Returns the injector to the free disarmed state.
  void Disarm();

  // THE hot-path check. Disarmed: one relaxed load, no side effects. Armed:
  // counts this eligible event against every matching entry and returns true
  // if one of them elects to fire here (writing its param through `param`).
  bool ShouldFire(FaultSite site, uint32_t variant = kFaultAnyVariant,
                  uint64_t* param = nullptr) {
    if ((armed_sites_.load(std::memory_order_relaxed) &
         (1u << static_cast<uint32_t>(site))) == 0) [[likely]] {
      return false;
    }
    return FireSlow(site, variant, param);
  }

  // How many times entries for `site` have fired (test/report plumbing).
  uint64_t FiredCount(FaultSite site) const {
    return fired_[static_cast<uint32_t>(site)].load(std::memory_order_relaxed);
  }

  // The victim a given armed entry resolved to ('*' plans: which variant the
  // seed picked). Returns kFaultAnyVariant when no entry arms `site`.
  uint32_t ResolvedVictim(FaultSite site) const;

 private:
  struct ArmedEntry {
    FaultSite site = FaultSite::kSiteCount;
    uint32_t variant = kFaultAnyVariant;
    uint64_t nth = 1;
    uint64_t param = 0;
    std::atomic<uint64_t> hits{0};
  };

  bool FireSlow(FaultSite site, uint32_t variant, uint64_t* param);

  std::atomic<uint32_t> armed_sites_{0};  // bit i = some entry arms site i
  std::atomic<size_t> entry_count_{0};
  ArmedEntry entries_[kMaxEntries];
  std::atomic<uint64_t> fired_[kFaultSiteCount] = {};
};

}  // namespace mvee

#endif  // MVEE_UTIL_FAULT_INJECTION_H_
