#include "mvee/agents/offline_trace.h"

#include <chrono>
#include <cstring>

#include "mvee/util/hash.h"
#include "mvee/util/spin.h"
#include "mvee/util/variant_killed.h"

namespace mvee {

size_t SyncTrace::TotalEvents() const {
  size_t total = 0;
  for (const auto& events : per_thread_) {
    total += events.size();
  }
  return total;
}

std::vector<uint8_t> SyncTrace::Serialize() const {
  // Layout: [u32 magic][u32 max_threads][u64 clock_count]
  //         per thread: [u64 count] count x ([u32 clock][u64 time])
  std::vector<uint8_t> bytes;
  auto put32 = [&](uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      bytes.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  };
  auto put64 = [&](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      bytes.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  };
  put32(0x53594e43);  // "SYNC"
  put32(max_threads());
  put64(clock_count_);
  for (const auto& events : per_thread_) {
    put64(events.size());
    for (const auto& event : events) {
      put32(event.clock_id);
      put64(event.time);
    }
  }
  return bytes;
}

std::unique_ptr<SyncTrace> SyncTrace::Deserialize(const std::vector<uint8_t>& bytes) {
  size_t offset = 0;
  auto get32 = [&](uint32_t* out) {
    if (offset + 4 > bytes.size()) {
      return false;
    }
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(bytes[offset + i]) << (8 * i);
    }
    offset += 4;
    *out = v;
    return true;
  };
  auto get64 = [&](uint64_t* out) {
    if (offset + 8 > bytes.size()) {
      return false;
    }
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(bytes[offset + i]) << (8 * i);
    }
    offset += 8;
    *out = v;
    return true;
  };

  uint32_t magic = 0;
  uint32_t max_threads = 0;
  uint64_t clock_count = 0;
  if (!get32(&magic) || magic != 0x53594e43 || !get32(&max_threads) ||
      !get64(&clock_count) || max_threads == 0 || max_threads > 4096) {
    return nullptr;
  }
  auto trace = std::make_unique<SyncTrace>(max_threads, clock_count);
  for (uint32_t t = 0; t < max_threads; ++t) {
    uint64_t count = 0;
    if (!get64(&count)) {
      return nullptr;
    }
    for (uint64_t i = 0; i < count; ++i) {
      uint32_t clock = 0;
      uint64_t time = 0;
      if (!get32(&clock) || !get64(&time)) {
        return nullptr;
      }
      trace->Append(t, {clock, time});
    }
  }
  return trace;
}

OfflineRecorderAgent::OfflineRecorderAgent(uint32_t max_threads, size_t clock_count)
    : trace_(std::make_unique<SyncTrace>(max_threads, clock_count)),
      clocks_(clock_count),
      pending_(max_threads) {}

OfflineRecorderAgent::~OfflineRecorderAgent() = default;

uint32_t OfflineRecorderAgent::ClockOf(const void* addr) const {
  return static_cast<uint32_t>(ClockAddressHash(reinterpret_cast<uint64_t>(addr)) %
                               clocks_.size());
}

void OfflineRecorderAgent::BeforeSyncOp(uint32_t tid, const void* addr) {
  const uint32_t clock_id = ClockOf(addr);
  auto& clock = clocks_[clock_id];
  SpinWait waiter;
  while (clock.lock.test_and_set(std::memory_order_acquire)) {
    waiter.Pause();
  }
  pending_[tid] = {clock_id, clock.time};
}

void OfflineRecorderAgent::AfterSyncOp(uint32_t tid, const void* addr) {
  (void)addr;
  const Pending pending = pending_[tid];
  auto& clock = clocks_[pending.clock_id];
  {
    // Trace appends may reallocate vectors: serialize them (offline
    // recording has no no-allocation constraint, §3.3 applies only to the
    // online agents).
    std::lock_guard<std::mutex> lock(append_mutex_);
    trace_->Append(tid, {pending.clock_id, pending.time});
  }
  clock.time = pending.time + 1;
  clock.lock.clear(std::memory_order_release);
}

std::unique_ptr<SyncTrace> OfflineRecorderAgent::TakeTrace() { return std::move(trace_); }

OfflineReplayAgent::OfflineReplayAgent(const SyncTrace* trace, AgentControl control)
    : trace_(trace),
      control_(std::move(control)),
      clocks_(trace->clock_count()),
      next_event_(trace->max_threads()),
      pending_(trace->max_threads()) {}

void OfflineReplayAgent::BeforeSyncOp(uint32_t tid, const void* addr) {
  (void)addr;
  const auto& events = trace_->ThreadEvents(tid);
  const uint64_t index = next_event_[tid].load(std::memory_order_relaxed);
  if (index >= events.size()) {
    // The replayed execution performs more sync ops than were recorded —
    // the program or inputs changed.
    if (control_.on_stall) {
      control_.on_stall("offline replay: trace exhausted for thread " + std::to_string(tid));
    }
    throw VariantKilled{};
  }
  const SyncTrace::Event event = events[index];
  auto& local_clock = clocks_[event.clock_id].time;
  SpinWait waiter;
  while (local_clock.load(std::memory_order_acquire) != event.time) {
    if (control_.aborted()) {
      throw VariantKilled{};
    }
    waiter.Pause();
  }
  pending_[tid] = event;
}

void OfflineReplayAgent::AfterSyncOp(uint32_t tid, const void* addr) {
  (void)addr;
  const SyncTrace::Event event = pending_[tid];
  clocks_[event.clock_id].time.store(event.time + 1, std::memory_order_release);
  next_event_[tid].fetch_add(1, std::memory_order_relaxed);
  replayed_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace mvee
